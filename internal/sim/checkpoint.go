package sim

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"reskit/internal/stats"
)

// The sharded Monte-Carlo runners partition trials into fixed blocks,
// each bound to its own rng substream. That makes a completed block a
// deterministic, resumable unit — the property the checkpoint layer
// (internal/ckpt) builds on. The block sizes are exported so snapshot
// geometry can be validated on resume.
const (
	// MonteCarloBlockSize is the trials-per-substream block of the
	// per-reservation runners (MonteCarlo*).
	MonteCarloBlockSize = mcBlockSize
	// CampaignBlockSize is the trials-per-substream block of the
	// campaign runners (MonteCarloCampaign*).
	CampaignBlockSize = campaignBlockSize
)

// Checkpointer is the durable run-state hook of the sharded Monte-Carlo
// runners, alongside the Observer: Restore feeds back the blocks a
// previous interrupted run already completed (so only missing blocks are
// re-run), and Commit hands over each freshly completed block's encoded
// partial aggregate for persistence. Payloads are opaque to the
// checkpointer and bit-exact to the simulator, so a resumed run merges
// restored and recomputed blocks in block order into an aggregate
// bit-identical to an uninterrupted run, for any worker count.
//
// Commit is called concurrently by workers and must be safe for
// concurrent use; it is never called for a block that was interrupted
// mid-flight. A nil Checkpointer disables the layer at zero cost.
// ckpt.Writer is the production implementation.
type Checkpointer interface {
	// Restore returns the encoded partial aggregate of block b from a
	// previous run, or nil when the block must be (re)computed.
	Restore(b int) []byte
	// Commit records the encoded partial aggregate of the freshly
	// completed block b.
	Commit(b int, payload []byte)
}

// MonteCarloCheckpointed is MonteCarloContext with durable run state:
// blocks already present in ck are restored instead of re-run, and every
// freshly completed block is committed to ck. The final aggregate is
// bit-identical to an uninterrupted MonteCarlo for any worker count.
func MonteCarloCheckpointed(ctx context.Context, cfg Config, trials int, seed uint64, workers int, ck Checkpointer) (Aggregate, error) {
	return monteCarloRunner(ctx, cfg, trials, seed, workers, Run, ck)
}

// MonteCarloCampaignCheckpointed is MonteCarloCampaignContext with
// durable run state, with the same restore/commit contract as
// MonteCarloCheckpointed.
func MonteCarloCampaignCheckpointed(ctx context.Context, cfg CampaignConfig, trials int, seed uint64, workers int, ck Checkpointer) (CampaignAggregate, error) {
	return monteCarloCampaignRunner(ctx, cfg, trials, seed, workers, ck)
}

// aggregateWireSize is the exact encoded size of an Aggregate: seven
// summaries plus four int64 tallies.
const aggregateWireSize = 7*stats.SummaryWireSize + 4*8

// encodeAggregate serializes one block's aggregate bit-exactly (floats
// as IEEE-754 bit patterns, little-endian).
func encodeAggregate(a *Aggregate) []byte {
	b := make([]byte, 0, aggregateWireSize)
	b = a.Saved.AppendBinary(b)
	b = a.Lost.AppendBinary(b)
	b = a.Tasks.AppendBinary(b)
	b = a.Checkpoints.AppendBinary(b)
	b = a.Failures.AppendBinary(b)
	b = a.CkptFaults.AppendBinary(b)
	b = a.TimeUsed.AppendBinary(b)
	b = binary.LittleEndian.AppendUint64(b, uint64(a.FailedRuns))
	b = binary.LittleEndian.AppendUint64(b, uint64(a.RevokedRuns))
	b = binary.LittleEndian.AppendUint64(b, uint64(a.ZeroRuns))
	b = binary.LittleEndian.AppendUint64(b, uint64(a.Trials))
	return b
}

// decodeAggregate restores one block's aggregate from its wire image.
func decodeAggregate(data []byte, a *Aggregate) error {
	if len(data) != aggregateWireSize {
		return fmt.Errorf("sim: aggregate payload is %d bytes, want %d", len(data), aggregateWireSize)
	}
	off := 0
	for _, s := range []*stats.Summary{
		&a.Saved, &a.Lost, &a.Tasks, &a.Checkpoints, &a.Failures, &a.CkptFaults, &a.TimeUsed,
	} {
		if err := s.UnmarshalBinary(data[off : off+stats.SummaryWireSize]); err != nil {
			return err
		}
		off += stats.SummaryWireSize
	}
	a.FailedRuns = int64(binary.LittleEndian.Uint64(data[off:]))
	a.RevokedRuns = int64(binary.LittleEndian.Uint64(data[off+8:]))
	a.ZeroRuns = int64(binary.LittleEndian.Uint64(data[off+16:]))
	a.Trials = int64(binary.LittleEndian.Uint64(data[off+24:]))
	return nil
}

// campaignPartialWireSize is the exact encoded size of a
// campaignPartial: six float64 running sums plus two int64 counts.
const campaignPartialWireSize = 6*8 + 2*8

// encodeCampaignPartial serializes one block's campaign sums bit-exactly.
func encodeCampaignPartial(p *campaignPartial) []byte {
	b := make([]byte, 0, campaignPartialWireSize)
	for _, v := range []float64{p.res, p.util, p.lost, p.ckptFaults, p.crashes, p.revoked} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(p.completed))
	b = binary.LittleEndian.AppendUint64(b, uint64(p.trials))
	return b
}

// decodeCampaignPartial restores one block's campaign sums.
func decodeCampaignPartial(data []byte, p *campaignPartial) error {
	if len(data) != campaignPartialWireSize {
		return fmt.Errorf("sim: campaign payload is %d bytes, want %d", len(data), campaignPartialWireSize)
	}
	for i, f := range []*float64{&p.res, &p.util, &p.lost, &p.ckptFaults, &p.crashes, &p.revoked} {
		*f = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	completed := int64(binary.LittleEndian.Uint64(data[48:]))
	trials := int64(binary.LittleEndian.Uint64(data[56:]))
	if completed < 0 || trials < 0 || completed > trials {
		return fmt.Errorf("sim: campaign payload counts inconsistent (completed=%d, trials=%d)", completed, trials)
	}
	p.completed = int(completed)
	p.trials = int(trials)
	return nil
}

// restoreBlocks decodes every block ck already holds into parts via
// decode, marking it in the returned skip mask. A nil ck returns a nil
// mask. Decode failures abort the run with a structured error — a
// payload that passed the snapshot CRC but does not parse means the
// snapshot belongs to an incompatible build, and silently re-running the
// block could mask real corruption.
func restoreBlocks(ck Checkpointer, numBlocks int, decode func(b int, data []byte) error) ([]bool, error) {
	if ck == nil {
		return nil, nil
	}
	restored := make([]bool, numBlocks)
	for b := 0; b < numBlocks; b++ {
		data := ck.Restore(b)
		if data == nil {
			continue
		}
		if err := decode(b, data); err != nil {
			return nil, fmt.Errorf("sim: restoring checkpointed block %d: %w", b, err)
		}
		restored[b] = true
	}
	return restored, nil
}
