package sim

import (
	"runtime"
	"sync"

	"reskit/internal/core"
	"reskit/internal/rng"
	"reskit/internal/stats"
)

// PreemptibleAggregate summarizes a Monte-Carlo experiment for the
// Section 3 scenario.
type PreemptibleAggregate struct {
	Work      stats.Summary // saved work per trial (0 on checkpoint failure)
	Successes int64         // trials whose checkpoint completed in time
	Trials    int64
}

// SuccessRate returns the fraction of trials whose checkpoint completed.
func (a PreemptibleAggregate) SuccessRate() float64 {
	if a.Trials == 0 {
		return 0
	}
	return float64(a.Successes) / float64(a.Trials)
}

// RunPreemptibleOnce simulates one reservation of the preemptible
// scenario with the checkpoint started x seconds before the end: it
// samples the checkpoint duration C and returns R - x when C <= x, and 0
// otherwise — the realized W(X) of Section 3.1.
func RunPreemptibleOnce(p *core.Preemptible, x float64, r *rng.Source) float64 {
	c := p.C.Sample(r)
	if c <= x && x <= p.R {
		return p.R - x
	}
	return 0
}

// MonteCarloPreemptible estimates E(W(X)) by simulation: `trials`
// independent reservations with the checkpoint started x before the end,
// split across `workers` parallel substreams of seed.
func MonteCarloPreemptible(p *core.Preemptible, x float64, trials int, seed uint64, workers int) PreemptibleAggregate {
	return preemptibleRunner(trials, seed, workers, preemptTrial(p, x, false))
}

// MonteCarloPreemptibleOracle simulates the clairvoyant policy that
// observes the realized checkpoint duration C and starts the checkpoint
// exactly C seconds before the end, saving R - C every time. It is the
// per-trial upper bound on any X policy.
func MonteCarloPreemptibleOracle(p *core.Preemptible, trials int, seed uint64, workers int) PreemptibleAggregate {
	return preemptibleRunner(trials, seed, workers, preemptTrial(p, 0, true))
}

// preemptPartial accumulates one block's preemptible-trial sums.
type preemptPartial struct {
	work      stats.Summary
	successes int64
	trials    int64
}

// preemptTrial returns the per-trial sampler of the given policy: the
// fixed lead-time x, or (oracle) the clairvoyant plan that observes the
// realized checkpoint duration.
func preemptTrial(p *core.Preemptible, x float64, oracle bool) func(*rng.Source) (float64, bool) {
	if oracle {
		return func(src *rng.Source) (float64, bool) {
			c := p.C.Sample(src)
			if c > p.R {
				return 0, false
			}
			return p.R - c, true
		}
	}
	return func(src *rng.Source) (float64, bool) {
		c := p.C.Sample(src)
		if c <= x && x <= p.R {
			return p.R - x, true
		}
		return 0, false
	}
}

// runPreemptBlock simulates the trials of block b ([b*mcBlockSize, ...))
// on src. complete is false when done fired mid-block; such a block must
// never be committed as durable state.
func runPreemptBlock(trial func(*rng.Source) (float64, bool), trials, b int,
	src *rng.Source, done <-chan struct{}) (p preemptPartial, complete bool) {

	lo := b * mcBlockSize
	hi := lo + mcBlockSize
	if hi > trials {
		hi = trials
	}
	for i := lo; i < hi; i++ {
		if done != nil {
			select {
			case <-done:
				return p, false
			default:
			}
		}
		v, ok := trial(src)
		p.work.Add(v)
		if ok {
			p.successes++
		}
		p.trials++
	}
	return p, true
}

func preemptibleRunner(trials int, seed uint64, workers int,
	trial func(*rng.Source) (float64, bool)) PreemptibleAggregate {

	if trials <= 0 {
		return PreemptibleAggregate{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Fixed-size blocks, one rng substream per block: the aggregate is
	// independent of the worker count (see MonteCarlo).
	numBlocks := (trials + mcBlockSize - 1) / mcBlockSize
	if workers > numBlocks {
		workers = numBlocks
	}
	parts := make([]preemptPartial, numBlocks)
	blocks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Source per worker, reinitialized per block — state
			// identical to a fresh NewStream, with no per-block
			// allocation.
			var src rng.Source
			for b := range blocks {
				src.Reinit(seed, uint64(b))
				parts[b], _ = runPreemptBlock(trial, trials, b, &src, nil)
			}
		}()
	}
	for b := 0; b < numBlocks; b++ {
		blocks <- b
	}
	close(blocks)
	wg.Wait()

	var agg PreemptibleAggregate
	for _, p := range parts {
		agg.Work.Merge(p.work)
		agg.Successes += p.successes
		agg.Trials += p.trials
	}
	return agg
}
