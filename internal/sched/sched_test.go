package sched

import (
	"math"
	"strings"
	"testing"

	"reskit/internal/core"
	"reskit/internal/dist"
	"reskit/internal/rng"
	"reskit/internal/sim"
	"reskit/internal/strategy"
)

func schedLaws() (task, ckpt dist.Continuous) {
	return dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1)),
		dist.Truncate(dist.NewNormal(5, 0.4), 0, math.Inf(1))
}

func dynStrategy(r float64, task, ckpt dist.Continuous) strategy.Strategy {
	return strategy.NewDynamic(core.NewDynamic(r, task, ckpt))
}

func TestWaitModels(t *testing.T) {
	p := NewPowerLawWait(0.5, 1.2, 0.5)
	law30 := p.WaitLaw(30)
	law120 := p.WaitLaw(120)
	if !(law120.Mean() > law30.Mean()) {
		t.Errorf("wait mean should grow with R: %g vs %g", law30.Mean(), law120.Mean())
	}
	want := 0.5 * math.Pow(30, 1.2)
	if math.Abs(law30.Mean()-want) > 1e-9 {
		t.Errorf("mean %g want %g", law30.Mean(), want)
	}
	if !strings.Contains(p.String(), "Gamma") {
		t.Errorf("String %q", p.String())
	}

	c := ConstantWait{Law: dist.NewDeterministic(7)}
	if c.WaitLaw(10).Mean() != 7 || c.WaitLaw(1000).Mean() != 7 {
		t.Errorf("constant wait not constant")
	}
	if (NoWait{}).WaitLaw(5).Mean() != 0 {
		t.Errorf("NoWait should be zero")
	}
}

func TestPowerLawWaitValidation(t *testing.T) {
	cases := []func(){
		func() { NewPowerLawWait(0, 1, 0.5) },
		func() { NewPowerLawWait(1, -1, 0.5) },
		func() { NewPowerLawWait(1, 1, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRunAccountsWaits(t *testing.T) {
	task, ckpt := schedLaws()
	cfg := Config{
		Campaign: sim.CampaignConfig{
			Reservation: sim.Config{
				R: 29, Recovery: 1.5, Task: task, Ckpt: ckpt,
				Strategy: dynStrategy(29, task, ckpt),
			},
			TotalWork: 100,
		},
		Wait: ConstantWait{Law: dist.NewDeterministic(10)},
	}
	res := Run(cfg, rng.New(3))
	if !res.Completed {
		t.Fatalf("campaign incomplete: %+v", res)
	}
	wantWait := 10 * float64(res.Reservations)
	if math.Abs(res.TotalWait-wantWait) > 1e-9 {
		t.Errorf("TotalWait %g want %g", res.TotalWait, wantWait)
	}
	if math.Abs(res.Makespan-(res.TotalWait+res.TimeUsed)) > 1e-9 {
		t.Errorf("makespan %g != wait %g + used %g", res.Makespan, res.TotalWait, res.TimeUsed)
	}
}

func TestRunNilWaitDefaultsToNoWait(t *testing.T) {
	task, ckpt := schedLaws()
	cfg := Config{
		Campaign: sim.CampaignConfig{
			Reservation: sim.Config{
				R: 29, Task: task, Ckpt: ckpt,
				Strategy: dynStrategy(29, task, ckpt),
			},
			TotalWork: 50,
		},
	}
	res := Run(cfg, rng.New(4))
	if res.TotalWait != 0 {
		t.Errorf("nil wait model should wait 0, got %g", res.TotalWait)
	}
}

func TestCompareLengthsWaitShapesChoice(t *testing.T) {
	task, ckpt := schedLaws()
	base := sim.Config{Recovery: 1.5, Task: task, Ckpt: ckpt}
	mk := func(r float64) strategy.Strategy { return dynStrategy(r, task, ckpt) }
	candidates := []float64{20, 80}
	const work = 300
	const trials = 30

	// Steep superlinear waits: short reservations should win on
	// makespan.
	steep := CompareLengths(base, work, NewPowerLawWait(0.02, 2.0, 0.3),
		candidates, mk, trials, 1)
	if !(steep[20] < steep[80]) {
		t.Errorf("steep waits should favor R=20: %v", steep)
	}

	// Flat constant waits: long reservations amortize the per-request
	// wait and should win.
	flat := CompareLengths(base, work, ConstantWait{Law: dist.NewDeterministic(15)},
		candidates, mk, trials, 1)
	if !(flat[80] < flat[20]) {
		t.Errorf("flat waits should favor R=80: %v", flat)
	}
}

func TestRunValidation(t *testing.T) {
	task, ckpt := schedLaws()
	defer func() {
		if recover() == nil {
			t.Errorf("non-positive TotalWork must panic")
		}
	}()
	Run(Config{
		Campaign: sim.CampaignConfig{
			Reservation: sim.Config{R: 29, Task: task, Ckpt: ckpt,
				Strategy: dynStrategy(29, task, ckpt)},
		},
	}, rng.New(1))
}
