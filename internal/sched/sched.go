// Package sched models the platform side of the paper's setting: jobs
// obtain fixed-length reservations from a batch scheduler, and shorter
// reservations are easier to place ("it lowers the wait-time of the
// application, as the job scheduler can easily place a smaller
// reservation", Section 1). It provides queue-wait models parameterized
// by the requested length R, and an end-to-end campaign simulation whose
// metric is wall-clock makespan — waits plus machine time — rather than
// machine time alone. Combined with internal/planner, this closes the
// loop on the R trade-off the paper leaves to "many parameters".
package sched

import (
	"fmt"
	"math"

	"reskit/internal/dist"
	"reskit/internal/rng"
	"reskit/internal/sim"
	"reskit/internal/strategy"
)

// WaitModel yields the queue-wait law for a reservation request of
// length r.
type WaitModel interface {
	fmt.Stringer
	// WaitLaw returns the law of the wait time before a length-r
	// reservation starts.
	WaitLaw(r float64) dist.Continuous
}

// PowerLawWait models the empirical observation that wait times grow
// superlinearly with the requested slot size: the mean wait is
// Coeff * r^Exponent, Gamma-distributed with coefficient of variation
// CV.
type PowerLawWait struct {
	Coeff    float64 // scale of the mean wait
	Exponent float64 // growth of the mean wait with r
	CV       float64 // coefficient of variation of the wait
}

// NewPowerLawWait validates and returns the model.
func NewPowerLawWait(coeff, exponent, cv float64) PowerLawWait {
	if !(coeff > 0) || !(exponent >= 0) || !(cv > 0) ||
		math.IsNaN(coeff) || math.IsNaN(exponent) || math.IsNaN(cv) {
		panic(fmt.Sprintf("sched: PowerLawWait requires coeff > 0, exponent >= 0, cv > 0; got (%g, %g, %g)",
			coeff, exponent, cv))
	}
	return PowerLawWait{Coeff: coeff, Exponent: exponent, CV: cv}
}

// String implements WaitModel.
func (p PowerLawWait) String() string {
	return fmt.Sprintf("wait ~ Gamma(mean=%g*R^%g, cv=%g)", p.Coeff, p.Exponent, p.CV)
}

// WaitLaw implements WaitModel.
func (p PowerLawWait) WaitLaw(r float64) dist.Continuous {
	mean := p.Coeff * math.Pow(r, p.Exponent)
	k := 1 / (p.CV * p.CV)
	return dist.NewGamma(k, mean/k)
}

// ConstantWait waits according to a fixed law regardless of r.
type ConstantWait struct {
	Law dist.Continuous
}

// String implements WaitModel.
func (c ConstantWait) String() string { return fmt.Sprintf("wait ~ %v", c.Law) }

// WaitLaw implements WaitModel.
func (c ConstantWait) WaitLaw(float64) dist.Continuous { return c.Law }

// NoWait places every reservation immediately.
type NoWait struct{}

// String implements WaitModel.
func (NoWait) String() string { return "no wait" }

// WaitLaw implements WaitModel.
func (NoWait) WaitLaw(float64) dist.Continuous { return dist.NewDeterministic(0) }

// Config describes an end-to-end campaign with queue waits.
type Config struct {
	Campaign sim.CampaignConfig
	Wait     WaitModel
}

// Result extends the campaign result with wall-clock accounting.
type Result struct {
	sim.CampaignResult
	TotalWait float64 // time spent waiting in the queue
	Makespan  float64 // wall clock: waits + per-reservation machine occupancy
}

// Run simulates the campaign including queue waits. Each reservation
// request waits according to the model before starting; the job occupies
// the machine for the reservation's TimeUsed (a dropped reservation
// frees the job to request the next one early).
func Run(cfg Config, r *rng.Source) Result {
	if cfg.Wait == nil {
		cfg.Wait = NoWait{}
	}
	if !(cfg.Campaign.TotalWork > 0) {
		panic(fmt.Sprintf("sched: TotalWork must be positive, got %g", cfg.Campaign.TotalWork))
	}

	res := Result{}
	maxRes := cfg.Campaign.MaxReservations
	if maxRes <= 0 {
		perRes := cfg.Campaign.Reservation.R
		maxRes = int(20*cfg.Campaign.TotalWork/perRes) + 100
	}
	waitLaw := cfg.Wait.WaitLaw(cfg.Campaign.Reservation.R)

	for res.Reservations < maxRes && res.Committed < cfg.Campaign.TotalWork {
		wait := waitLaw.Sample(r)
		if wait < 0 {
			wait = 0
		}
		res.TotalWait += wait
		res.Makespan += wait

		rc := cfg.Campaign.Reservation
		if res.Reservations == 0 {
			rc.Recovery = 0
			rc.RecoveryLaw = nil
		}
		run := sim.Run(rc, r)
		res.Reservations++
		res.TimeReserved += rc.R
		res.TimeUsed += run.TimeUsed
		res.Makespan += run.TimeUsed
		res.Committed += run.Saved
		res.LostWork += run.Lost
		res.FailedCkpts += run.FailedCkpts
		if run.Saved == 0 {
			res.StalledRounds++
		}
	}
	res.Completed = res.Committed >= cfg.Campaign.TotalWork
	return res
}

// CompareLengths runs `trials` campaigns for every candidate reservation
// length (sharing the task/checkpoint laws; mkStrategy builds the
// per-length decision policy, typically the dynamic rule for that R) and
// returns the mean wall-clock makespan for each — the queue-aware answer
// to "which R should I ask for?".
func CompareLengths(base sim.Config, totalWork float64, wait WaitModel,
	candidates []float64, mkStrategy func(r float64) strategy.Strategy,
	trials int, seed uint64) map[float64]float64 {

	out := make(map[float64]float64, len(candidates))
	for i, r := range candidates {
		resCfg := base
		resCfg.R = r
		resCfg.Strategy = mkStrategy(r)
		cfg := Config{
			Campaign: sim.CampaignConfig{
				Reservation: resCfg,
				TotalWork:   totalWork,
			},
			Wait: wait,
		}
		var sum float64
		for t := 0; t < trials; t++ {
			src := rng.NewStream(seed+uint64(i)*1000, uint64(t))
			sum += Run(cfg, src).Makespan
		}
		out[r] = sum / float64(trials)
	}
	return out
}
