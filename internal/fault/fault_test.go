package fault

import (
	"math"
	"strings"
	"testing"

	"reskit/internal/rng"
)

func TestCkptBernoulliExtremes(t *testing.T) {
	r := rng.New(1)
	never, _ := NewCkptBernoulli(0)
	always, _ := NewCkptBernoulli(1)
	for i := 0; i < 1000; i++ {
		if never.Fails(5, r) {
			t.Fatal("p=0 must never fail")
		}
		if !always.Fails(5, r) {
			t.Fatal("p=1 must always fail")
		}
	}
}

func TestCkptBernoulliRate(t *testing.T) {
	m, err := NewCkptBernoulli(0.3)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	fails := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Fails(1, r) {
			fails++
		}
	}
	if got := float64(fails) / n; math.Abs(got-0.3) > 0.01 {
		t.Errorf("empirical failure rate %g, want ~0.3", got)
	}
}

func TestCkptHazardDurationDependence(t *testing.T) {
	m, err := NewCkptHazard(0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	const n = 100000
	count := func(d float64) float64 {
		fails := 0
		for i := 0; i < n; i++ {
			if m.Fails(d, r) {
				fails++
			}
		}
		return float64(fails) / n
	}
	short, long := count(0.1), count(4)
	wantShort := 1 - math.Exp(-0.5*0.1)
	wantLong := 1 - math.Exp(-0.5*4)
	if math.Abs(short-wantShort) > 0.01 {
		t.Errorf("short-attempt failure rate %g, want ~%g", short, wantShort)
	}
	if math.Abs(long-wantLong) > 0.01 {
		t.Errorf("long-attempt failure rate %g, want ~%g", long, wantLong)
	}
	zero, _ := NewCkptHazard(0)
	if zero.Fails(100, r) {
		t.Error("rate=0 must never fail")
	}
}

func TestArrivalMeans(t *testing.T) {
	r := rng.New(11)
	exp, _ := NewExpArrival(0.25)
	wb, _ := NewWeibullArrival(2, 3)
	const n = 200000
	var se, sw float64
	for i := 0; i < n; i++ {
		se += exp.Next(r)
		sw += wb.Next(r)
	}
	if got, want := se/n, 4.0; math.Abs(got-want) > 0.05 {
		t.Errorf("exp arrival mean %g, want ~%g", got, want)
	}
	// Weibull(2, 3) mean = 3*Gamma(1.5).
	if got, want := sw/n, 3*math.Gamma(1.5); math.Abs(got-want) > 0.05 {
		t.Errorf("weibull arrival mean %g, want ~%g", got, want)
	}
}

func TestRevocationHorizon(t *testing.T) {
	r := rng.New(5)
	exp, _ := NewExpRevocation(0.1)
	for i := 0; i < 1000; i++ {
		if h := exp.Horizon(29, r); !(h > 0 && h <= 29) {
			t.Fatalf("exp horizon %g outside (0, 29]", h)
		}
	}
	never, _ := NewUniformRevocation(0)
	always, _ := NewUniformRevocation(1)
	for i := 0; i < 1000; i++ {
		if h := never.Horizon(29, r); h != 29 {
			t.Fatalf("p=0 revocation must keep the nominal horizon, got %g", h)
		}
		if h := always.Horizon(29, r); !(h >= 0 && h < 29) {
			t.Fatalf("p=1 revocation horizon %g outside [0, 29)", h)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	bad := []func() error{
		func() error { _, err := NewCkptBernoulli(-0.1); return err },
		func() error { _, err := NewCkptBernoulli(1.5); return err },
		func() error { _, err := NewCkptBernoulli(math.NaN()); return err },
		func() error { _, err := NewCkptHazard(-1); return err },
		func() error { _, err := NewCkptHazard(math.Inf(1)); return err },
		func() error { _, err := NewExpArrival(0); return err },
		func() error { _, err := NewExpArrival(math.NaN()); return err },
		func() error { _, err := NewWeibullArrival(0, 1); return err },
		func() error { _, err := NewWeibullArrival(1, math.Inf(1)); return err },
		func() error { _, err := NewExpRevocation(-2); return err },
		func() error { _, err := NewUniformRevocation(2); return err },
	}
	for i, f := range bad {
		if f() == nil {
			t.Errorf("constructor case %d accepted invalid parameters", i)
		}
	}
}

func TestPlanActiveAndString(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Error("nil plan must be inactive")
	}
	if got := nilPlan.String(); got != "no faults" {
		t.Errorf("nil plan String = %q", got)
	}
	if (&Plan{}).Active() {
		t.Error("zero plan must be inactive")
	}
	crash, _ := NewExpArrival(0.02)
	ck, _ := NewCkptBernoulli(0.05)
	p := &Plan{Crash: crash, Ckpt: ck}
	if !p.Active() {
		t.Error("plan with models must be active")
	}
	s := p.String()
	if !strings.Contains(s, "crash~exp") || !strings.Contains(s, "ckptfail") {
		t.Errorf("plan String %q misses its models", s)
	}
}

func TestPlanValidate(t *testing.T) {
	good := &Plan{Crash: ExpArrival{Rate: 1}, Ckpt: CkptHazard{Rate: 0.1}, Revoke: UniformRevocation{P: 0.2}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	for i, p := range []*Plan{
		{Crash: ExpArrival{Rate: -1}},
		{Crash: WeibullArrival{Shape: 0, Scale: 1}},
		{Ckpt: CkptBernoulli{P: 2}},
		{Ckpt: CkptHazard{Rate: math.NaN()}},
		{Revoke: ExpRevocation{Rate: 0}},
		{Revoke: UniformRevocation{P: -0.5}},
	} {
		if p.Validate() == nil {
			t.Errorf("invalid plan case %d accepted", i)
		}
	}
}

func TestParse(t *testing.T) {
	for _, spec := range []string{"", "none", " none "} {
		p, err := Parse(spec)
		if err != nil || p != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, p, err)
		}
	}

	p, err := Parse("crash=exp:0.02,ckptfail=0.05,revoke=uniform:0.1")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := p.Crash.(ExpArrival); !ok || got.Rate != 0.02 {
		t.Errorf("Crash = %#v, want ExpArrival{0.02}", p.Crash)
	}
	if got, ok := p.Ckpt.(CkptBernoulli); !ok || got.P != 0.05 {
		t.Errorf("Ckpt = %#v, want CkptBernoulli{0.05}", p.Ckpt)
	}
	if got, ok := p.Revoke.(UniformRevocation); !ok || got.P != 0.1 {
		t.Errorf("Revoke = %#v, want UniformRevocation{0.1}", p.Revoke)
	}

	p, err = Parse("crash=weibull:0.7,100")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := p.Crash.(WeibullArrival); !ok || got.Shape != 0.7 || got.Scale != 100 {
		t.Errorf("Crash = %#v, want WeibullArrival{0.7, 100}", p.Crash)
	}

	p, err = Parse("ckpthazard=0.3,revoke=exp:0.001")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := p.Ckpt.(CkptHazard); !ok || got.Rate != 0.3 {
		t.Errorf("Ckpt = %#v, want CkptHazard{0.3}", p.Ckpt)
	}
	if got, ok := p.Revoke.(ExpRevocation); !ok || got.Rate != 0.001 {
		t.Errorf("Revoke = %#v, want ExpRevocation{0.001}", p.Revoke)
	}

	for _, spec := range []string{
		"nonsense",
		"crash=exp",
		"crash=exp:abc",
		"crash=normal:1",
		"crash=weibull:1",
		"ckptfail=1.5",
		"ckptfail=0.1,0.2",
		"revoke=uniform:-1",
		"revoke=pareto:1",
		"frobnicate=1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", spec)
		}
	}
}
