// Package fault provides composable fault models for the reservation
// simulator (internal/sim): checkpoint failures (Bernoulli per attempt or
// duration-dependent hazard), mid-reservation fail-stop crashes with
// Exponential or Weibull inter-arrival times, and early reservation
// revocation (spot-style preemption of the allocation itself).
//
// The paper's model (Sections 3-4) is failure-free: the only uncertainty
// is in the checkpoint and task durations. Real platforms — the setting
// of the checkpointing-under-failures literature the paper cites — also
// lose work to node crashes, aborted checkpoint writes, and revoked
// reservations. A Plan bundles any subset of the three fault classes and
// plugs into sim.Config.Faults.
//
// Determinism contract: every model draws variates exclusively from the
// *rng.Source handed to it, in a fixed documented order, and keeps no
// internal state. The simulator calls the models at fixed points of each
// trajectory, so a (config, seed, stream) triple always produces the same
// faults, and the sharded Monte-Carlo harness stays bit-identical for any
// worker count.
package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"reskit/internal/rng"
)

// CkptModel decides whether one checkpoint attempt fails after running
// for its full sampled duration (a failed attempt consumes the time but
// commits nothing). Implementations draw exactly one uniform variate per
// call.
type CkptModel interface {
	fmt.Stringer
	// Fails reports whether a checkpoint attempt of duration d fails.
	Fails(d float64, r *rng.Source) bool
}

// CkptBernoulli fails each checkpoint attempt independently with
// probability P, regardless of its duration — the model for commit
// failures dominated by a fixed-rate component (metadata races, transient
// filesystem errors).
type CkptBernoulli struct {
	P float64 // failure probability per attempt, in [0, 1]
}

// NewCkptBernoulli validates and returns the model.
func NewCkptBernoulli(p float64) (CkptBernoulli, error) {
	if !(p >= 0 && p <= 1) { // also rejects NaN
		return CkptBernoulli{}, fmt.Errorf("fault: checkpoint failure probability must be in [0, 1], got %g", p)
	}
	return CkptBernoulli{P: p}, nil
}

// String implements CkptModel.
func (m CkptBernoulli) String() string { return fmt.Sprintf("ckptfail(p=%g)", m.P) }

// Fails implements CkptModel.
func (m CkptBernoulli) Fails(_ float64, r *rng.Source) bool {
	return r.Float64() < m.P
}

// CkptHazard fails a checkpoint attempt of duration d with probability
// 1 - exp(-Rate*d): the longer the write, the larger the window for a
// media or network error to corrupt it. Rate is the per-second hazard.
type CkptHazard struct {
	Rate float64 // failure hazard per unit of checkpoint duration
}

// NewCkptHazard validates and returns the model.
func NewCkptHazard(rate float64) (CkptHazard, error) {
	if !(rate >= 0) || math.IsInf(rate, 0) {
		return CkptHazard{}, fmt.Errorf("fault: checkpoint hazard rate must be finite and >= 0, got %g", rate)
	}
	return CkptHazard{Rate: rate}, nil
}

// String implements CkptModel.
func (m CkptHazard) String() string { return fmt.Sprintf("ckpthazard(rate=%g)", m.Rate) }

// Fails implements CkptModel.
func (m CkptHazard) Fails(d float64, r *rng.Source) bool {
	if d < 0 {
		d = 0
	}
	return r.Float64() < -math.Expm1(-m.Rate*d)
}

// Arrival samples inter-arrival times of fail-stop crashes inside a
// reservation. Arrivals form a renewal process: after each crash (and at
// reservation start) the next gap is drawn independently.
type Arrival interface {
	fmt.Stringer
	// Next returns the time until the next crash, measured from now.
	Next(r *rng.Source) float64
}

// ExpArrival is the classical memoryless fail-stop model: crashes arrive
// with Exponential(Rate) gaps, i.e. MTBF = 1/Rate.
type ExpArrival struct {
	Rate float64 // crashes per unit time
}

// NewExpArrival validates and returns the model.
func NewExpArrival(rate float64) (ExpArrival, error) {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return ExpArrival{}, fmt.Errorf("fault: crash rate must be positive and finite, got %g", rate)
	}
	return ExpArrival{Rate: rate}, nil
}

// String implements Arrival.
func (a ExpArrival) String() string { return fmt.Sprintf("crash~exp(rate=%g)", a.Rate) }

// Next implements Arrival.
func (a ExpArrival) Next(r *rng.Source) float64 { return r.Exponential(a.Rate) }

// WeibullArrival draws crash gaps from Weibull(Shape, Scale). Shape < 1
// models infant-mortality platforms (bursty early failures), shape > 1
// wear-out; shape 1 degenerates to ExpArrival with rate 1/Scale.
type WeibullArrival struct {
	Shape, Scale float64
}

// NewWeibullArrival validates and returns the model.
func NewWeibullArrival(shape, scale float64) (WeibullArrival, error) {
	if !(shape > 0) || !(scale > 0) || math.IsInf(shape, 0) || math.IsInf(scale, 0) {
		return WeibullArrival{}, fmt.Errorf("fault: Weibull crash arrivals need positive finite shape and scale, got (%g, %g)", shape, scale)
	}
	return WeibullArrival{Shape: shape, Scale: scale}, nil
}

// String implements Arrival.
func (a WeibullArrival) String() string {
	return fmt.Sprintf("crash~weibull(k=%g, lambda=%g)", a.Shape, a.Scale)
}

// Next implements Arrival.
func (a WeibullArrival) Next(r *rng.Source) float64 { return r.Weibull(a.Shape, a.Scale) }

// Revocation truncates the reservation itself: spot-style platforms can
// reclaim the allocation before its nominal end. The job is not told the
// revocation instant in advance — strategies still observe the nominal R.
type Revocation interface {
	fmt.Stringer
	// Horizon returns the effective reservation length for one run:
	// min(R, revocation instant). It draws exactly one variate.
	Horizon(R float64, r *rng.Source) float64
}

// ExpRevocation revokes the reservation at an Exponential(Rate) instant
// (or never within the reservation, when the draw exceeds R).
type ExpRevocation struct {
	Rate float64 // revocations per unit time
}

// NewExpRevocation validates and returns the model.
func NewExpRevocation(rate float64) (ExpRevocation, error) {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return ExpRevocation{}, fmt.Errorf("fault: revocation rate must be positive and finite, got %g", rate)
	}
	return ExpRevocation{Rate: rate}, nil
}

// String implements Revocation.
func (v ExpRevocation) String() string { return fmt.Sprintf("revoke~exp(rate=%g)", v.Rate) }

// Horizon implements Revocation.
func (v ExpRevocation) Horizon(R float64, r *rng.Source) float64 {
	t := r.Exponential(v.Rate)
	if t < R {
		return t
	}
	return R
}

// UniformRevocation revokes with probability P, at an instant uniform on
// (0, R) — the simplest bounded-support preemption model. It draws two
// variates (the coin, then the instant) but only when P > 0.
type UniformRevocation struct {
	P float64 // revocation probability per reservation, in [0, 1]
}

// NewUniformRevocation validates and returns the model.
func NewUniformRevocation(p float64) (UniformRevocation, error) {
	if !(p >= 0 && p <= 1) {
		return UniformRevocation{}, fmt.Errorf("fault: revocation probability must be in [0, 1], got %g", p)
	}
	return UniformRevocation{P: p}, nil
}

// String implements Revocation.
func (v UniformRevocation) String() string { return fmt.Sprintf("revoke~uniform(p=%g)", v.P) }

// Horizon implements Revocation.
func (v UniformRevocation) Horizon(R float64, r *rng.Source) float64 {
	if v.P <= 0 {
		return R
	}
	if r.Float64() >= v.P {
		return R
	}
	return R * r.Float64()
}

// Plan bundles the fault models active in one experiment. Any field may
// be nil; a zero Plan injects nothing. The simulator samples, per
// reservation, in this fixed order: recovery (outside the plan), then
// Revoke.Horizon, then the first Crash gap; during execution it draws one
// Crash gap after each crash and one CkptModel variate per completed
// checkpoint attempt.
type Plan struct {
	Crash  Arrival    // fail-stop crashes inside the reservation
	Ckpt   CkptModel  // per-attempt checkpoint failures
	Revoke Revocation // early reservation revocation
}

// Active reports whether the plan injects any fault at all.
func (p *Plan) Active() bool {
	return p != nil && (p.Crash != nil || p.Ckpt != nil || p.Revoke != nil)
}

// String summarizes the active models.
func (p *Plan) String() string {
	if !p.Active() {
		return "no faults"
	}
	var parts []string
	if p.Crash != nil {
		parts = append(parts, p.Crash.String())
	}
	if p.Ckpt != nil {
		parts = append(parts, p.Ckpt.String())
	}
	if p.Revoke != nil {
		parts = append(parts, p.Revoke.String())
	}
	return strings.Join(parts, ", ")
}

// Validate checks the plan's models. A nil plan is valid.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	switch m := p.Crash.(type) {
	case nil:
	case ExpArrival:
		if _, err := NewExpArrival(m.Rate); err != nil {
			return err
		}
	case WeibullArrival:
		if _, err := NewWeibullArrival(m.Shape, m.Scale); err != nil {
			return err
		}
	}
	switch m := p.Ckpt.(type) {
	case nil:
	case CkptBernoulli:
		if _, err := NewCkptBernoulli(m.P); err != nil {
			return err
		}
	case CkptHazard:
		if _, err := NewCkptHazard(m.Rate); err != nil {
			return err
		}
	}
	switch m := p.Revoke.(type) {
	case nil:
	case ExpRevocation:
		if _, err := NewExpRevocation(m.Rate); err != nil {
			return err
		}
	case UniformRevocation:
		if _, err := NewUniformRevocation(m.P); err != nil {
			return err
		}
	}
	return nil
}

// Parse builds a Plan from a compact spec string, the syntax of the
// simulate command's -faults flag: comma-separated key=value clauses
//
//	crash=exp:RATE          Exponential crash arrivals (MTBF = 1/RATE)
//	crash=weibull:K,LAMBDA  Weibull crash arrivals
//	ckptfail=P              Bernoulli checkpoint failure, probability P
//	ckpthazard=RATE         duration-dependent checkpoint failure hazard
//	revoke=exp:RATE         Exponential reservation revocation
//	revoke=uniform:P        probability-P uniform revocation
//
// e.g. "crash=exp:0.02,ckptfail=0.05,revoke=exp:0.001". The empty string
// and "none" parse to a nil plan.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	// Clauses are comma-separated, but so are multi-parameter values
	// (crash=weibull:K,LAMBDA): a segment without '=' continues the
	// previous clause's parameter list.
	var clauses []string
	for _, seg := range strings.Split(spec, ",") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if strings.Contains(seg, "=") || len(clauses) == 0 {
			clauses = append(clauses, seg)
		} else {
			clauses[len(clauses)-1] += "," + seg
		}
	}
	p := &Plan{}
	for _, clause := range clauses {
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		switch key {
		case "crash":
			kind, args, _ := strings.Cut(val, ":")
			switch kind {
			case "exp":
				rate, err := parseFloats(args, 1)
				if err != nil {
					return nil, fmt.Errorf("fault: crash=exp: %w", err)
				}
				m, err := NewExpArrival(rate[0])
				if err != nil {
					return nil, err
				}
				p.Crash = m
			case "weibull":
				ps, err := parseFloats(args, 2)
				if err != nil {
					return nil, fmt.Errorf("fault: crash=weibull: %w", err)
				}
				m, err := NewWeibullArrival(ps[0], ps[1])
				if err != nil {
					return nil, err
				}
				p.Crash = m
			default:
				return nil, fmt.Errorf("fault: unknown crash model %q (want exp or weibull)", kind)
			}
		case "ckptfail":
			prob, err := parseFloats(val, 1)
			if err != nil {
				return nil, fmt.Errorf("fault: ckptfail: %w", err)
			}
			m, err := NewCkptBernoulli(prob[0])
			if err != nil {
				return nil, err
			}
			p.Ckpt = m
		case "ckpthazard":
			rate, err := parseFloats(val, 1)
			if err != nil {
				return nil, fmt.Errorf("fault: ckpthazard: %w", err)
			}
			m, err := NewCkptHazard(rate[0])
			if err != nil {
				return nil, err
			}
			p.Ckpt = m
		case "revoke":
			kind, args, _ := strings.Cut(val, ":")
			switch kind {
			case "exp":
				rate, err := parseFloats(args, 1)
				if err != nil {
					return nil, fmt.Errorf("fault: revoke=exp: %w", err)
				}
				m, err := NewExpRevocation(rate[0])
				if err != nil {
					return nil, err
				}
				p.Revoke = m
			case "uniform":
				prob, err := parseFloats(args, 1)
				if err != nil {
					return nil, fmt.Errorf("fault: revoke=uniform: %w", err)
				}
				m, err := NewUniformRevocation(prob[0])
				if err != nil {
					return nil, err
				}
				p.Revoke = m
			default:
				return nil, fmt.Errorf("fault: unknown revoke model %q (want exp or uniform)", kind)
			}
		default:
			return nil, fmt.Errorf("fault: unknown clause key %q (want crash, ckptfail, ckpthazard or revoke)", key)
		}
	}
	if !p.Active() {
		return nil, nil
	}
	return p, nil
}

// parseFloats parses exactly n comma-free colon-free floats from a
// comma-separated list.
func parseFloats(s string, n int) ([]float64, error) {
	fields := strings.Split(s, ",")
	if len(fields) != n {
		return nil, fmt.Errorf("want %d parameter(s), got %q", n, s)
	}
	out := make([]float64, n)
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad parameter %q: %w", f, err)
		}
		out[i] = v
	}
	return out, nil
}
