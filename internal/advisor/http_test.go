package advisor

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHandlerAdvise(t *testing.T) {
	a := New(Options{})
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()

	body, err := json.Marshal(qDynamic)
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/advise", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}
	got := decodeBody[Answer](t, resp)
	want := mustAdvise(t, a, qDynamic)
	if got != want {
		t.Fatalf("HTTP answer differs from direct call:\n%+v\n%+v", got, want)
	}
}

func TestHandlerMethodAndDecodeErrors(t *testing.T) {
	a := New(Options{})
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/advise")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow header %q", allow)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/advise", "{nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}
	if e := decodeBody[map[string]string](t, resp); e["error"] == "" {
		t.Error("400 carried no error body")
	}

	resp = postJSON(t, ts.URL+"/v1/advise", `{"mode":"warp","r":1,"ckpt":"det:1"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestHandlerBatch mixes valid and invalid queries: the response stays
// 200 and index-aligned, with errors inline.
func TestHandlerBatch(t *testing.T) {
	a := New(Options{})
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()

	req := BatchRequest{Queries: []Query{qPreempt, {Mode: "bad"}, qStatic}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/advise/batch", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decodeBody[BatchResponse](t, resp)
	if len(got.Answers) != 3 {
		t.Fatalf("%d answers, want 3", len(got.Answers))
	}
	if got.Answers[0].Error != "" || got.Answers[2].Error != "" {
		t.Errorf("valid queries errored: %+v", got.Answers)
	}
	if got.Answers[1].Error == "" {
		t.Error("invalid query did not error")
	}
	if want := mustAdvise(t, a, qPreempt); got.Answers[0].Answer != want {
		t.Errorf("batch answer 0 differs from direct call")
	}
}

func TestHandlerBatchTooLarge(t *testing.T) {
	a := New(Options{})
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()

	var b bytes.Buffer
	b.WriteString(`{"queries":[`)
	for i := 0; i <= maxBatchQueries; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"mode":"preempt"}`)
	}
	b.WriteString(`]}`)
	resp := postJSON(t, ts.URL+"/v1/advise/batch", b.String())
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHandlerHealthz(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestBatchSharesTables: a batch of identical keys must build once.
func TestBatchSharesTables(t *testing.T) {
	a := New(Options{})
	queries := make([]Query, 100)
	for i := range queries {
		q := qDynamic
		q.Work = float64(i) / 10
		queries[i] = q
	}
	for _, q := range queries {
		mustAdvise(t, a, q)
	}
	if n := a.Tables(); n != 1 {
		t.Fatalf("100 same-key queries built %d tables, want 1", n)
	}
}
