package advisor

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// HTTP surface:
//
//	POST /v1/advise        {Query}                -> {Answer} | {"error": ...}
//	POST /v1/advise/batch  {"queries": [Query]}   -> {"answers": [BatchAnswer]}
//	GET  /healthz          -> 200 "ok"
//
// Malformed requests get a 400 with a JSON error body; a batch request
// that parses gets a 200 with per-item errors inline, so one bad query
// cannot sink the other 999.

const (
	// maxRequestBytes bounds a request body; at ~200 bytes per query it
	// comfortably fits maxBatchQueries.
	maxRequestBytes = 4 << 20
	// maxBatchQueries bounds one batch request.
	maxBatchQueries = 10000
)

// BatchRequest is the body of POST /v1/advise/batch.
type BatchRequest struct {
	Queries []Query `json:"queries"`
}

// BatchAnswer is one element of a batch response: the answer, or the
// error that query produced.
type BatchAnswer struct {
	Answer
	Error string `json:"error,omitempty"`
}

// BatchResponse is the body of a batch reply; Answers is index-aligned
// with the request's Queries.
type BatchResponse struct {
	Answers []BatchAnswer `json:"answers"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// DecodeQuery parses one JSON query body. Split out (and fuzzed) so the
// request decoder's robustness is testable without a socket.
func DecodeQuery(data []byte) (Query, error) {
	var q Query
	if err := json.Unmarshal(data, &q); err != nil {
		return Query{}, fmt.Errorf("advisor: bad query JSON: %w", err)
	}
	return q, nil
}

// DecodeBatch parses a batch request body and enforces the size cap.
func DecodeBatch(data []byte) (BatchRequest, error) {
	var req BatchRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return BatchRequest{}, fmt.Errorf("advisor: bad batch JSON: %w", err)
	}
	if len(req.Queries) > maxBatchQueries {
		return BatchRequest{}, fmt.Errorf("advisor: batch of %d queries exceeds the %d limit", len(req.Queries), maxBatchQueries)
	}
	return req, nil
}

// Handler returns the advisor's HTTP mux. The caller wires it into a
// hardened server (internal/httpd) and mounts any extra endpoints
// (/metrics, /debug/vars) beside it.
func (a *Advisor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/advise", a.handleAdvise)
	mux.HandleFunc("/v1/advise/batch", a.handleBatch)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (a *Advisor) handleAdvise(w http.ResponseWriter, r *http.Request) {
	body, ok := postBody(w, r)
	if !ok {
		return
	}
	q, err := DecodeQuery(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ans, err := a.Advise(r.Context(), q)
	if err != nil {
		writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ans)
}

func (a *Advisor) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := postBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeBatch(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp := BatchResponse{Answers: make([]BatchAnswer, len(req.Queries))}
	for i, q := range req.Queries {
		ans, err := a.Advise(r.Context(), q)
		if err != nil {
			resp.Answers[i].Error = err.Error()
			continue
		}
		resp.Answers[i].Answer = ans
	}
	writeJSON(w, http.StatusOK, resp)
}

// postBody enforces method and size limits and reads the request body.
func postBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
		} else {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		}
		return nil, false
	}
	return body, true
}

// statusFor maps an Advise error to an HTTP status: context
// cancellation means the client went away or the build deadline hit;
// everything else is the client's query.
func statusFor(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}
