package advisor

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"sync"
	"testing"

	"reskit/internal/ckpt"
	"reskit/internal/core"
	"reskit/internal/dist"
	"reskit/internal/lawspec"
	"reskit/internal/obs"
)

// The reference queries, one per mode, mirroring ckptopt invocations.
var (
	qPreempt = Query{Mode: ModePreempt, R: 10, Ckpt: "exp:0.5@[1,5]"}
	qStatic  = Query{Mode: ModeStatic, R: 100, Task: "norm:5,0.5", Ckpt: "norm:1,0.1@[0,inf]"}
	qStaticD = Query{Mode: ModeStatic, R: 50, TaskDisc: "poisson:3", Ckpt: "uniform:0.5,1"}
	qDynamic = Query{Mode: ModeDynamic, R: 10, Task: "exp:0.3", Ckpt: "uniform:0.3,0.7", Work: 2.5}
)

func mustAdvise(t *testing.T, a *Advisor, q Query) Answer {
	t.Helper()
	ans, err := a.Advise(context.Background(), q)
	if err != nil {
		t.Fatalf("Advise(%+v): %v", q, err)
	}
	return ans
}

// TestFingerprintMatchesCkptIdiom pins the alloc-free incremental hash
// to the canonical ckpt.Fingerprint over the rendered part list — the
// content address must be reproducible by any tool that can call
// ckpt.Fingerprint.
func TestFingerprintMatchesCkptIdiom(t *testing.T) {
	for _, q := range []Query{qPreempt, qStatic, qStaticD, qDynamic,
		{Mode: ModeDynamic, R: math.Pi, Task: "norm:3,0.5@[0,inf]", Ckpt: "det:1"},
		{}, // even a nonsense query hashes consistently
	} {
		want := ckpt.Fingerprint(FingerprintParts(q)...)
		if got := q.fingerprint(); got != want {
			t.Errorf("fingerprint(%+v) = %016x, ckpt.Fingerprint = %016x", q, got, want)
		}
	}
}

// TestFingerprintIgnoresDecisionState: Work/Elapsed select a point on
// the policy, not a different policy — they must not shard the cache.
func TestFingerprintIgnoresDecisionState(t *testing.T) {
	q2 := qDynamic
	q2.Work, q2.Elapsed = 7, 9
	if q2.fingerprint() != qDynamic.fingerprint() {
		t.Fatal("Work/Elapsed leaked into the fingerprint")
	}
	q3 := qDynamic
	q3.R = math.Nextafter(q3.R, 20)
	if q3.fingerprint() == qDynamic.fingerprint() {
		t.Fatal("adjacent R values share a fingerprint")
	}
}

// TestPreemptBitIdentical compares the served answer to the direct core
// invocation (what ckptopt -mode preempt runs) with exact equality.
func TestPreemptBitIdentical(t *testing.T) {
	a := New(Options{})
	ans := mustAdvise(t, a, qPreempt)

	law, err := lawspec.Parse(qPreempt.Ckpt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.TryNewPreemptible(qPreempt.R, law)
	if err != nil {
		t.Fatal(err)
	}
	sol, pess := p.OptimalX(), p.Pessimistic()
	if ans.X != sol.X || ans.ExpectedWork != sol.ExpectedWork ||
		ans.Method != sol.Method || ans.Interior != sol.Interior {
		t.Errorf("optimal: got %+v, want %+v", ans, sol)
	}
	if ans.PessX != pess.X || ans.PessWork != pess.ExpectedWork || ans.Gain != p.Gain() {
		t.Errorf("pessimistic/gain mismatch: %+v", ans)
	}
}

// TestStaticBitIdentical does the same for both static task-law kinds.
func TestStaticBitIdentical(t *testing.T) {
	a := New(Options{})
	for _, q := range []Query{qStatic, qStaticD} {
		ans := mustAdvise(t, a, q)
		s, err := buildStatic(q, mustParse(t, q.Ckpt))
		if err != nil {
			t.Fatal(err)
		}
		sol := s.Optimize()
		if ans.NOpt != sol.NOpt || ans.ENOpt != sol.ENOpt || ans.YOpt != sol.YOpt {
			t.Errorf("%+v: got (n=%d, en=%v, y=%v), want (n=%d, en=%v, y=%v)",
				q, ans.NOpt, ans.ENOpt, ans.YOpt, sol.NOpt, sol.ENOpt, sol.YOpt)
		}
	}
}

// TestDynamicBitIdentical sweeps the decision over a work x elapsed
// grid and requires exact agreement with a directly constructed
// core.Dynamic — including points near the indifference line, where the
// implementation falls back to exact integrals.
func TestDynamicBitIdentical(t *testing.T) {
	a := New(Options{})

	d, err := buildDynamic(qDynamic, mustParse(t, qDynamic.Ckpt))
	if err != nil {
		t.Fatal(err)
	}
	wint, werr := d.Intersection()

	ans := mustAdvise(t, a, qDynamic)
	if werr == nil != ans.HasWInt || (werr == nil && wint != ans.WInt) {
		t.Fatalf("intersection: served (%v, %v), direct (%v, %v)", ans.WInt, ans.HasWInt, wint, werr)
	}
	for wi := 0; wi <= 20; wi++ {
		for ei := 0; ei <= 20; ei++ {
			work := qDynamic.R * float64(wi) / 20
			elapsed := qDynamic.R * float64(ei) / 20
			if elapsed < work {
				continue
			}
			q := qDynamic
			q.Work, q.Elapsed = work, elapsed
			if q.Elapsed == 0 && q.Work != 0 {
				continue // elapsed 0 means "equal to work"
			}
			got := mustAdvise(t, a, q)
			want := d.ShouldCheckpointAt(work, got.Elapsed)
			if got.CheckpointNow != want {
				t.Errorf("ShouldCheckpointAt(%v, %v): served %v, direct %v", work, got.Elapsed, got.CheckpointNow, want)
			}
		}
	}
}

// TestElapsedDefaultsToWork pins the Section 4.3 convention.
func TestElapsedDefaultsToWork(t *testing.T) {
	a := New(Options{})
	q := qDynamic
	q.Work, q.Elapsed = 3, 0
	ans := mustAdvise(t, a, q)
	if ans.Elapsed != 3 || ans.Work != 3 {
		t.Fatalf("elapsed defaulting: got work=%v elapsed=%v", ans.Work, ans.Elapsed)
	}
}

// TestStoreRoundTrip: a second advisor over the same directory must
// serve the persisted table (store hit, no rebuild) and answer
// bit-identically to the process that built it.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg1 := obs.NewRegistry()
	a1 := New(Options{Dir: dir, Reg: reg1})
	first := mustAdvise(t, a1, qDynamic)
	if got := reg1.Counter("advisor.builds").Value(); got != 1 {
		t.Fatalf("cold advisor ran %d builds, want 1", got)
	}
	path := ArtifactPath(dir, uint64(first.Fingerprint))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("artifact not persisted: %v", err)
	}

	reg2 := obs.NewRegistry()
	a2 := New(Options{Dir: dir, Reg: reg2})
	second := mustAdvise(t, a2, qDynamic)
	if got := reg2.Counter("advisor.builds").Value(); got != 0 {
		t.Fatalf("warm advisor ran %d builds, want 0 (store hit)", got)
	}
	if got := reg2.Counter("advisor.store_hits").Value(); got != 1 {
		t.Fatalf("store_hits = %d, want 1", got)
	}
	if first != second {
		t.Fatalf("answers differ across processes:\n%+v\n%+v", first, second)
	}

	// And a fine-grained sweep still agrees exactly.
	for wi := 1; wi <= 10; wi++ {
		q := qDynamic
		q.Work = qDynamic.R * float64(wi) / 10
		q.Elapsed = q.Work
		x, y := mustAdvise(t, a1, q), mustAdvise(t, a2, q)
		if x != y {
			t.Fatalf("decision diverges at work=%v:\n%+v\n%+v", q.Work, x, y)
		}
	}
}

// TestArtifactCodecRoundTrip round-trips every mode through the binary
// codec and requires structural equality.
func TestArtifactCodecRoundTrip(t *testing.T) {
	for _, q := range []Query{qPreempt, qStatic, qStaticD, qDynamic} {
		e, err := computeEntry(context.Background(), q, q.fingerprint())
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeArtifact(e.art)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeArtifact(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", q.Mode, err)
		}
		if !artifactsEqual(e.art, got) {
			t.Errorf("%s: round trip changed the artifact", q.Mode)
		}
	}
}

func artifactsEqual(a, b *Artifact) bool {
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	return string(aj) == string(bj)
}

// TestCorruptArtifactIsRebuilt: a flipped byte must be detected (CRC)
// and the table rebuilt from the laws — never a wrong answer served.
func TestCorruptArtifactIsRebuilt(t *testing.T) {
	dir := t.TempDir()
	a1 := New(Options{Dir: dir})
	first := mustAdvise(t, a1, qDynamic)

	path := ArtifactPath(dir, uint64(first.Fingerprint))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	a2 := New(Options{Dir: dir, Reg: reg})
	second := mustAdvise(t, a2, qDynamic)
	if first != second {
		t.Fatalf("corrupt store changed the answer:\n%+v\n%+v", first, second)
	}
	if reg.Counter("advisor.store_errors").Value() == 0 {
		t.Error("corruption not counted in advisor.store_errors")
	}
	if reg.Counter("advisor.builds").Value() != 1 {
		t.Error("corrupt artifact did not trigger a rebuild")
	}
}

// TestDecodeArtifactRejectsGarbage exercises the error taxonomy.
func TestDecodeArtifactRejectsGarbage(t *testing.T) {
	e, err := computeEntry(context.Background(), qPreempt, qPreempt.fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	good, err := EncodeArtifact(e.art)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrNotArtifact},
		{"short", []byte("RK"), ErrNotArtifact},
		{"magic", append([]byte("NOPE"), good[4:]...), ErrNotArtifact},
		{"version", append(append([]byte(storeMagic), 99), good[5:]...), ErrVersion},
		{"truncated", good[:len(good)-4], ErrCorrupt},
		{"trailing", append(append([]byte{}, good...), 0), ErrCorrupt},
	}
	for _, tc := range cases {
		if _, err := DecodeArtifact(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestSingleflightDedupesBuilds: many concurrent cold queries for the
// same key must cost exactly one build.
func TestSingleflightDedupesBuilds(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(Options{Reg: reg})
	const n = 16
	var wg sync.WaitGroup
	answers := make([]Answer, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers[i] = mustAdviseConcurrent(t, a, qDynamic)
		}(i)
	}
	wg.Wait()
	if got := reg.Counter("advisor.builds").Value(); got != 1 {
		t.Fatalf("%d concurrent identical queries ran %d builds, want 1", n, got)
	}
	for i := 1; i < n; i++ {
		if answers[i] != answers[0] {
			t.Fatalf("answer %d differs: %+v vs %+v", i, answers[i], answers[0])
		}
	}
}

func mustAdviseConcurrent(t *testing.T, a *Advisor, q Query) Answer {
	ans, err := a.Advise(context.Background(), q)
	if err != nil {
		t.Errorf("Advise: %v", err)
	}
	return ans
}

// TestCacheHitZeroAllocs is the steady-state budget: once the table is
// cached, answering a query — any mode, including a dynamic decision
// away from the indifference line — must not allocate.
func TestCacheHitZeroAllocs(t *testing.T) {
	a := New(Options{Reg: obs.NewRegistry()})
	ctx := context.Background()
	queries := []Query{qPreempt, qStatic, qDynamic}
	for _, q := range queries {
		mustAdvise(t, a, q) // warm
	}
	for _, q := range queries {
		q := q
		if avg := testing.AllocsPerRun(200, func() {
			if _, err := a.Advise(ctx, q); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("%s cache hit allocates %.1f objects/request, want 0", q.Mode, avg)
		}
	}
}

// TestValidateRejectsBadQueries enumerates the rejection surface.
func TestValidateRejectsBadQueries(t *testing.T) {
	bad := []Query{
		{},
		{Mode: "nope", R: 1, Ckpt: "det:1"},
		{Mode: ModePreempt, R: 0, Ckpt: "det:1"},
		{Mode: ModePreempt, R: math.Inf(1), Ckpt: "det:1"},
		{Mode: ModePreempt, R: math.NaN(), Ckpt: "det:1"},
		{Mode: ModePreempt, R: 1},
		{Mode: ModePreempt, R: 10, Task: "det:1", Ckpt: "det:1"},
		{Mode: ModeStatic, R: 10, Ckpt: "det:1"},
		{Mode: ModeStatic, R: 10, Task: "det:1", TaskDisc: "poisson:1", Ckpt: "det:1"},
		{Mode: ModeDynamic, R: 10, Task: "det:1", Ckpt: "det:1", Work: -1},
		{Mode: ModeDynamic, R: 10, Task: "det:1", Ckpt: "det:1", Work: math.NaN()},
		{Mode: ModeDynamic, R: 10, Task: "det:1", Ckpt: "det:1", Work: 5, Elapsed: 2},
	}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a bad query", q)
		}
	}
	a := New(Options{})
	if _, err := a.Advise(context.Background(), Query{Mode: ModeStatic, R: 10, Task: "tri:0,1,2", Ckpt: "det:1"}); err == nil {
		t.Error("non-summable task law accepted for static mode")
	}
	if _, err := a.Advise(context.Background(), Query{Mode: ModePreempt, R: 10, Ckpt: "exp:1"}); err == nil {
		t.Error("unbounded checkpoint law accepted for preempt mode")
	}
}

// TestHex64JSON pins the wire form of fingerprints.
func TestHex64JSON(t *testing.T) {
	in := Hex64(0x00ab_cdef_0123_4567)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"00abcdef01234567"` {
		t.Fatalf("marshal: %s", data)
	}
	var out Hex64
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %x != %x", out, in)
	}
	if err := json.Unmarshal([]byte("12"), &out); err == nil {
		t.Error("numeric fingerprint accepted")
	}
}

func mustParse(t *testing.T, spec string) dist.Continuous {
	t.Helper()
	law, err := lawspec.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return law
}

// TestNegativeCache: a deterministic build failure (an unparseable law)
// is cached — the repeat query returns the identical error value from
// one map probe, without rerunning the build — while Tables() keeps
// counting only real policy tables.
func TestNegativeCache(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(Options{Reg: reg})
	ctx := context.Background()
	bad := Query{Mode: ModeDynamic, R: 10, Task: "warble:3", Ckpt: "uniform:0.3,0.7"}

	_, err1 := a.Advise(ctx, bad)
	if err1 == nil {
		t.Fatal("bogus law spec built a table")
	}
	_, err2 := a.Advise(ctx, bad)
	if err2 != err1 {
		t.Fatalf("repeat query rebuilt the error: %v vs %v", err2, err1)
	}
	if got := reg.Counter("advisor.build_errors").Value(); got != 1 {
		t.Fatalf("build_errors = %d, want 1 (the repeat must hit the cache)", got)
	}
	if got := reg.Counter("advisor.negative_hits").Value(); got != 1 {
		t.Fatalf("negative_hits = %d, want 1", got)
	}
	if got := a.Tables(); got != 0 {
		t.Fatalf("Tables() = %d, want 0: a cached error is not a table", got)
	}
	// A positive entry rides alongside, and only it is counted.
	mustAdvise(t, a, qDynamic)
	if got := a.Tables(); got != 1 {
		t.Fatalf("Tables() = %d, want 1", got)
	}
}

// TestNegativeCacheHitZeroAllocs: the negative hit path has the same
// budget as the positive one — atomic load, map probe, shared error.
func TestNegativeCacheHitZeroAllocs(t *testing.T) {
	a := New(Options{Reg: obs.NewRegistry()})
	ctx := context.Background()
	bad := Query{Mode: ModeStatic, R: 10, Task: "warble:3", Ckpt: "uniform:0.3,0.7"}
	if _, err := a.Advise(ctx, bad); err == nil { // warm
		t.Fatal("bogus law spec built a table")
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := a.Advise(ctx, bad); err == nil {
			t.Fatal("cached error vanished")
		}
	}); avg != 0 {
		t.Errorf("negative cache hit allocates %.1f objects/request, want 0", avg)
	}
}

// TestContextErrorNotCached: a build cancelled mid-flight must not
// poison the key — the next caller with a live context gets the table.
func TestContextErrorNotCached(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(Options{Reg: reg})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	q := Query{Mode: ModeDynamic, R: 11, Task: "exp:0.3", Ckpt: "uniform:0.3,0.7", Work: 2}
	if _, err := a.Advise(cancelled, q); err == nil {
		t.Skip("build finished before the cancellation was observed")
	}
	if got := reg.Counter("advisor.negative_hits").Value(); got != 0 {
		t.Fatalf("negative_hits = %d after a cancelled build, want 0", got)
	}
	mustAdvise(t, a, q)
	if got := a.Tables(); got != 1 {
		t.Fatalf("Tables() = %d, want 1: the cancelled build must not stick", got)
	}
}
