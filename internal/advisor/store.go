package advisor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"reskit/internal/atomicio"
)

// On-disk artifact format ("RKAD"):
//
//	magic   [4]byte  "RKAD"
//	version uint8    1
//	crc32   uint32   IEEE, over the payload
//	payload          little-endian fields, length-prefixed strings
//
// One file per fingerprint, named <%016x>.rkadv, written through
// internal/atomicio so a crashed writer leaves either the old artifact
// or none — never a torn one. The CRC plus the caller's fingerprint and
// key-field checks make a corrupt or stale artifact a cache miss, not a
// wrong answer.

const (
	storeMagic   = "RKAD"
	storeVersion = 1
	storeExt     = ".rkadv"

	// maxArtifactSize bounds a load so a damaged length prefix cannot
	// ask for gigabytes. A dynamic table is ~16 KiB; 1 MiB is generous.
	maxArtifactSize = 1 << 20
)

// Store error taxonomy; all wrapped, test with errors.Is.
var (
	ErrNotExist    = errors.New("advisor: artifact does not exist")
	ErrNotArtifact = errors.New("advisor: not an artifact file")
	ErrVersion     = errors.New("advisor: unsupported artifact version")
	ErrCorrupt     = errors.New("advisor: corrupt artifact")
)

const (
	modeCodePreempt = 1
	modeCodeStatic  = 2
	modeCodeDynamic = 3
)

func modeCode(mode string) (byte, error) {
	switch mode {
	case ModePreempt:
		return modeCodePreempt, nil
	case ModeStatic:
		return modeCodeStatic, nil
	case ModeDynamic:
		return modeCodeDynamic, nil
	}
	return 0, fmt.Errorf("advisor: unknown mode %q", mode)
}

func modeName(code byte) (string, error) {
	switch code {
	case modeCodePreempt:
		return ModePreempt, nil
	case modeCodeStatic:
		return ModeStatic, nil
	case modeCodeDynamic:
		return ModeDynamic, nil
	}
	return "", fmt.Errorf("%w: mode code %d", ErrCorrupt, code)
}

// ArtifactPath is the store filename for a fingerprint.
func ArtifactPath(dir string, fp uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x%s", fp, storeExt))
}

// SaveArtifact encodes and atomically writes one artifact. The parent
// directory is created if missing.
func SaveArtifact(path string, art *Artifact) error {
	data, err := EncodeArtifact(art)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return atomicio.WriteFile(path, data, 0o644)
}

// LoadArtifact reads and decodes one artifact file.
func LoadArtifact(path string) (*Artifact, error) {
	info, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		return nil, err
	}
	if info.Size() > maxArtifactSize {
		return nil, fmt.Errorf("%w: %s is %d bytes (limit %d)", ErrCorrupt, path, info.Size(), maxArtifactSize)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	art, err := DecodeArtifact(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return art, nil
}

// EncodeArtifact renders the binary form.
func EncodeArtifact(art *Artifact) ([]byte, error) {
	code, err := modeCode(art.Mode)
	if err != nil {
		return nil, err
	}
	var p payload
	p.u64(art.Fingerprint)
	p.u8(code)
	p.f64(art.R)
	p.str(art.Task)
	p.str(art.TaskDisc)
	p.str(art.Ckpt)
	switch code {
	case modeCodePreempt:
		t := art.Preempt
		if t == nil {
			return nil, errors.New("advisor: preempt artifact has no table")
		}
		p.f64(t.X)
		p.f64(t.ExpectedWork)
		p.str(t.Method)
		p.bool(t.Interior)
		p.f64(t.PessX)
		p.f64(t.PessWork)
		p.f64(t.Gain)
		p.f64(t.A)
		p.f64(t.B)
	case modeCodeStatic:
		t := art.Static
		if t == nil {
			return nil, errors.New("advisor: static artifact has no table")
		}
		p.f64(t.YOpt)
		p.f64(t.FOpt)
		p.u64(uint64(int64(t.NOpt)))
		p.f64(t.ENOpt)
	case modeCodeDynamic:
		t := art.Dynamic
		if t == nil {
			return nil, errors.New("advisor: dynamic artifact has no table")
		}
		if len(t.Coeff.A) != len(t.Coeff.B) {
			return nil, fmt.Errorf("advisor: ragged coefficient table (%d vs %d)", len(t.Coeff.A), len(t.Coeff.B))
		}
		p.f64(t.WInt)
		p.bool(t.HasWInt)
		p.f64(t.Coeff.R)
		p.u32(uint32(len(t.Coeff.A)))
		for _, v := range t.Coeff.A {
			p.f64(v)
		}
		for _, v := range t.Coeff.B {
			p.f64(v)
		}
	}

	out := make([]byte, 0, len(storeMagic)+1+4+len(p.b))
	out = append(out, storeMagic...)
	out = append(out, storeVersion)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(p.b))
	out = append(out, p.b...)
	return out, nil
}

// DecodeArtifact parses the binary form, verifying magic, version and
// checksum before touching the payload.
func DecodeArtifact(data []byte) (*Artifact, error) {
	if len(data) < len(storeMagic)+1+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any artifact", ErrNotArtifact, len(data))
	}
	if string(data[:len(storeMagic)]) != storeMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrNotArtifact, data[:len(storeMagic)])
	}
	if v := data[len(storeMagic)]; v != storeVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrVersion, v, storeVersion)
	}
	body := data[len(storeMagic)+1+4:]
	if want, got := binary.LittleEndian.Uint32(data[len(storeMagic)+1:]), crc32.ChecksumIEEE(body); want != got {
		return nil, fmt.Errorf("%w: checksum %08x, recorded %08x", ErrCorrupt, got, want)
	}

	r := &reader{b: body}
	art := &Artifact{}
	art.Fingerprint = r.u64()
	code := r.u8()
	art.R = r.f64()
	art.Task = r.str()
	art.TaskDisc = r.str()
	art.Ckpt = r.str()
	mode, err := modeName(code)
	if err != nil {
		return nil, err
	}
	art.Mode = mode
	switch code {
	case modeCodePreempt:
		t := &PreemptTable{}
		t.X = r.f64()
		t.ExpectedWork = r.f64()
		t.Method = r.str()
		t.Interior = r.bool()
		t.PessX = r.f64()
		t.PessWork = r.f64()
		t.Gain = r.f64()
		t.A = r.f64()
		t.B = r.f64()
		art.Preempt = t
	case modeCodeStatic:
		t := &StaticTable{}
		t.YOpt = r.f64()
		t.FOpt = r.f64()
		t.NOpt = int(int64(r.u64()))
		t.ENOpt = r.f64()
		art.Static = t
	case modeCodeDynamic:
		t := &DynamicTable{}
		t.WInt = r.f64()
		t.HasWInt = r.bool()
		t.Coeff.R = r.f64()
		n := r.u32()
		if r.err == nil && int(n) > maxArtifactSize/16 {
			return nil, fmt.Errorf("%w: table length %d", ErrCorrupt, n)
		}
		if r.err == nil {
			t.Coeff.A = make([]float64, n)
			t.Coeff.B = make([]float64, n)
			for i := range t.Coeff.A {
				t.Coeff.A[i] = r.f64()
			}
			for i := range t.Coeff.B {
				t.Coeff.B[i] = r.f64()
			}
		}
		art.Dynamic = t
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, r.err)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.b))
	}
	return art, nil
}

// payload builds the little-endian body.
type payload struct{ b []byte }

func (p *payload) u8(v byte)     { p.b = append(p.b, v) }
func (p *payload) u32(v uint32)  { p.b = binary.LittleEndian.AppendUint32(p.b, v) }
func (p *payload) u64(v uint64)  { p.b = binary.LittleEndian.AppendUint64(p.b, v) }
func (p *payload) f64(v float64) { p.u64(math.Float64bits(v)) }
func (p *payload) bool(v bool) {
	if v {
		p.u8(1)
	} else {
		p.u8(0)
	}
}
func (p *payload) str(s string) {
	p.u32(uint32(len(s)))
	p.b = append(p.b, s...)
}

// reader consumes the body, latching the first framing error.
type reader struct {
	b   []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("truncated: need %d bytes, have %d", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) str() string {
	n := r.u32()
	if r.err == nil && int64(n) > maxArtifactSize {
		r.err = fmt.Errorf("string length %d exceeds artifact bound", n)
		return ""
	}
	return string(r.take(int(n)))
}
