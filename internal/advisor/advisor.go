// Package advisor serves the paper's checkpoint-policy decisions as an
// online service. Every answer the CLI tools compute — the Section 3
// optimal checkpoint instant X*, the Section 4.2 static n_opt, the
// Section 4.3 dynamic threshold table — is a pure function of
// (law specs, R), so it is computed once, content-addressed by a
// fingerprint of exactly those inputs (the internal/ckpt idiom), kept
// in an immutable in-process cache, and optionally persisted through
// internal/atomicio so a restarted server never recomputes a table it
// already built.
//
// The cache is copy-on-write: readers take one atomic pointer load and
// a map lookup — no locks, no allocation — and a cache hit answers any
// query against the table without touching the quadrature stack (the
// Legendre rule cache in internal/quad is the precedent). Misses are
// deduplicated by a singleflight layer, so a thundering herd of
// identical cold queries costs one table build, not hundreds.
//
// Answers are bit-identical to the corresponding CLI invocation by
// construction: the build path runs the very same core constructors and
// solvers the CLI runs, and the dynamic decision path evaluates
// core.Dynamic.ShouldCheckpointAt on a Dynamic whose coefficient table
// was either built in place or re-installed verbatim from the artifact.
package advisor

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"reskit/internal/core"
	"reskit/internal/dist"
	"reskit/internal/lawspec"
	"reskit/internal/obs"
)

// Modes understood by the advisor; they mirror ckptopt -mode.
const (
	ModePreempt = "preempt"
	ModeStatic  = "static"
	ModeDynamic = "dynamic"
)

// Query asks one policy question. Mode, R and the law specs select the
// policy table (they alone are fingerprinted); Work and Elapsed carry
// the decision state of a dynamic query ("I have this much uncommitted
// work, this much reservation time has passed — should I checkpoint
// now?"). Elapsed defaults to Work, the Section 4.3 situation where no
// earlier checkpoint succeeded; after a successful mid-reservation
// commit, pass the true elapsed time (Section 4.4).
type Query struct {
	Mode     string  `json:"mode"`
	R        float64 `json:"r"`
	Task     string  `json:"task,omitempty"`     // continuous task law (static/dynamic)
	TaskDisc string  `json:"taskdisc,omitempty"` // discrete task law (static/dynamic)
	Ckpt     string  `json:"ckpt"`               // checkpoint-duration law (all modes)

	Work    float64 `json:"work,omitempty"`    // dynamic: uncommitted work
	Elapsed float64 `json:"elapsed,omitempty"` // dynamic: elapsed time (0 -> Work)
}

// Validate checks the query's shape without parsing the law specs (the
// build path reports law errors with full context).
func (q Query) Validate() error {
	switch q.Mode {
	case ModePreempt:
		if q.Task != "" || q.TaskDisc != "" {
			return fmt.Errorf("advisor: mode %q takes no task law", q.Mode)
		}
	case ModeStatic, ModeDynamic:
		if (q.Task == "") == (q.TaskDisc == "") {
			return fmt.Errorf("advisor: mode %q needs exactly one of task and taskdisc", q.Mode)
		}
	default:
		return fmt.Errorf("advisor: unknown mode %q (want preempt, static or dynamic)", q.Mode)
	}
	if !(q.R > 0) || math.IsInf(q.R, 0) || math.IsNaN(q.R) {
		return fmt.Errorf("advisor: R must be positive and finite, got %g", q.R)
	}
	if q.Ckpt == "" {
		return errors.New("advisor: ckpt law is required")
	}
	if q.Work < 0 || math.IsNaN(q.Work) || math.IsInf(q.Work, 0) {
		return fmt.Errorf("advisor: work must be finite and >= 0, got %g", q.Work)
	}
	if q.Elapsed < 0 || math.IsNaN(q.Elapsed) || math.IsInf(q.Elapsed, 0) {
		return fmt.Errorf("advisor: elapsed must be finite and >= 0, got %g", q.Elapsed)
	}
	if q.Elapsed != 0 && q.Elapsed < q.Work {
		return fmt.Errorf("advisor: elapsed %g < work %g is impossible", q.Elapsed, q.Work)
	}
	return nil
}

// elapsed resolves the dynamic decision state: zero means "no earlier
// checkpoint", i.e. elapsed time equals accumulated work.
func (q Query) elapsed() float64 {
	if q.Elapsed == 0 {
		return q.Work
	}
	return q.Elapsed
}

// Hex64 is a uint64 that marshals as a 16-digit hex JSON string — the
// fingerprint representation (a raw JSON number would lose bits in
// consumers that parse numbers as float64).
type Hex64 uint64

// MarshalJSON renders the value as "%016x".
func (h Hex64) MarshalJSON() ([]byte, error) {
	return []byte(`"` + fmt.Sprintf("%016x", uint64(h)) + `"`), nil
}

// UnmarshalJSON accepts the hex-string form.
func (h *Hex64) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("advisor: fingerprint must be a hex string, got %s", data)
	}
	v, err := strconv.ParseUint(string(data[1:len(data)-1]), 16, 64)
	if err != nil {
		return fmt.Errorf("advisor: bad fingerprint: %w", err)
	}
	*h = Hex64(v)
	return nil
}

// Answer is one policy decision. It is a flat struct — only the field
// groups matching Mode are meaningful — so a cache hit materializes it
// with zero allocations.
type Answer struct {
	Mode        string  `json:"mode"`
	Fingerprint Hex64   `json:"fingerprint"`
	R           float64 `json:"r"`

	// Dynamic (Section 4.3): the decision for the queried state plus
	// the indifference threshold W_int (HasWInt false when the curves
	// never cross inside (0, R)).
	CheckpointNow bool    `json:"checkpoint_now"`
	Work          float64 `json:"work"`
	Elapsed       float64 `json:"elapsed"`
	WInt          float64 `json:"w_int"`
	HasWInt       bool    `json:"has_w_int"`

	// Static (Section 4.2): checkpoint after NOpt tasks.
	NOpt  int     `json:"n_opt"`
	ENOpt float64 `json:"e_n_opt"`
	YOpt  float64 `json:"y_opt"`

	// Preempt (Section 3): start the final checkpoint X before the end.
	X            float64 `json:"x"`
	ExpectedWork float64 `json:"expected_work"`
	Method       string  `json:"method,omitempty"`
	Interior     bool    `json:"interior"`
	PessX        float64 `json:"pessimistic_x"`
	PessWork     float64 `json:"pessimistic_work"`
	Gain         float64 `json:"gain"`
}

// Artifact is the immutable, content-addressed policy table for one
// (mode, R, laws) key: everything expensive the build computed, and
// nothing that depends on a particular query. It is what the store
// persists and what the cache holds.
type Artifact struct {
	Fingerprint uint64
	Mode        string
	R           float64
	Task        string
	TaskDisc    string
	Ckpt        string

	Preempt *PreemptTable
	Static  *StaticTable
	Dynamic *DynamicTable
}

// PreemptTable is the solved Section 3 problem.
type PreemptTable struct {
	X, ExpectedWork float64
	Method          string
	Interior        bool
	PessX, PessWork float64
	Gain            float64
	A, B            float64 // support of the checkpoint law
}

// StaticTable is the solved Section 4.2 problem.
type StaticTable struct {
	YOpt, FOpt float64
	NOpt       int
	ENOpt      float64
}

// DynamicTable is the Section 4.3 coefficient table plus the
// indifference point.
type DynamicTable struct {
	WInt    float64
	HasWInt bool
	Coeff   core.CoeffTable
}

// matches reports whether the artifact's key fields equal the query's —
// the guard against a fingerprint collision or a stale store entry.
func (t *Artifact) matches(q Query) bool {
	return t.Mode == q.Mode && t.R == q.R &&
		t.Task == q.Task && t.TaskDisc == q.TaskDisc && t.Ckpt == q.Ckpt
}

// entry is a cached artifact plus the live decision objects rebuilt
// around it (the laws re-parsed, the coefficient table installed) — or
// a cached negative result: err set, everything else nil. The build
// errors the advisor caches are pure functions of the fingerprinted
// key fields (an unparseable law, a constructor rejection, a solver
// with no solution), so retrying the build can only burn the same CPU
// to produce the same error; caching the error makes the repeat query
// as cheap as a positive hit. Context errors are never cached — a
// cancelled build says nothing about the key.
type entry struct {
	art *Artifact
	dyn *core.Dynamic // dynamic mode: answers ShouldCheckpointAt
	err error         // negative entry: the deterministic build error
}

// inflight is one deduplicated build in progress.
type inflight struct {
	done chan struct{}
	e    *entry
	err  error
}

// Options configures an Advisor.
type Options struct {
	// Dir is the on-disk table store; "" keeps tables in memory only.
	Dir string
	// Reg binds the advisor's instruments (nil disables them):
	// advisor.queries, advisor.cache_hits, advisor.negative_hits,
	// advisor.builds, advisor.build_errors, advisor.store_hits,
	// advisor.store_writes, advisor.store_errors counters and the
	// advisor.build_ns sketch.
	Reg *obs.Registry
}

// Advisor answers policy queries from an immutable table cache.
type Advisor struct {
	dir string

	cache    atomic.Pointer[map[uint64]*entry]
	mu       sync.Mutex // guards inflight and cache publication
	inflight map[uint64]*inflight

	queries, hits, negHits, builds, buildErrs *obs.Counter
	storeHits, storeWrites, storeErrs         *obs.Counter
	buildNS                                   *obs.Quantiles
}

// New returns an Advisor with an empty cache.
func New(opts Options) *Advisor {
	a := &Advisor{
		dir:         opts.Dir,
		inflight:    make(map[uint64]*inflight),
		queries:     opts.Reg.Counter("advisor.queries"),
		hits:        opts.Reg.Counter("advisor.cache_hits"),
		negHits:     opts.Reg.Counter("advisor.negative_hits"),
		builds:      opts.Reg.Counter("advisor.builds"),
		buildErrs:   opts.Reg.Counter("advisor.build_errors"),
		storeHits:   opts.Reg.Counter("advisor.store_hits"),
		storeWrites: opts.Reg.Counter("advisor.store_writes"),
		storeErrs:   opts.Reg.Counter("advisor.store_errors"),
		buildNS:     opts.Reg.Quantiles("advisor.build_ns"),
	}
	empty := make(map[uint64]*entry)
	a.cache.Store(&empty)
	return a
}

// Tables returns the number of cached policy tables. Cached negative
// results do not count: they hold no table, only an error.
func (a *Advisor) Tables() int {
	n := 0
	for _, e := range *a.cache.Load() {
		if e.err == nil {
			n++
		}
	}
	return n
}

// Advise answers one query. The hot path — the table already cached —
// is one atomic load, one map probe and a table lookup: no locks, no
// allocation, nothing proportional to the table size. A miss builds the
// table (deduplicated with concurrent identical misses), consults and
// updates the on-disk store, and publishes the new cache map
// copy-on-write; ctx bounds only that build.
func (a *Advisor) Advise(ctx context.Context, q Query) (Answer, error) {
	a.queries.Inc()
	if err := q.Validate(); err != nil {
		return Answer{}, err
	}
	fp := q.fingerprint()
	if e, ok := (*a.cache.Load())[fp]; ok {
		if e.err != nil {
			a.negHits.Inc()
			return Answer{}, e.err
		}
		a.hits.Inc()
		return e.answer(fp, q), nil
	}
	e, err := a.lookupSlow(ctx, q, fp)
	if err != nil {
		return Answer{}, err
	}
	if e.err != nil {
		return Answer{}, e.err
	}
	return e.answer(fp, q), nil
}

// lookupSlow is the miss path: singleflight around build-and-publish.
func (a *Advisor) lookupSlow(ctx context.Context, q Query, fp uint64) (*entry, error) {
	a.mu.Lock()
	if e, ok := (*a.cache.Load())[fp]; ok { // raced with a publisher
		a.mu.Unlock()
		if e.err != nil {
			a.negHits.Inc()
		} else {
			a.hits.Inc()
		}
		return e, nil
	}
	if fl, ok := a.inflight[fp]; ok {
		a.mu.Unlock()
		select {
		case <-fl.done:
			return fl.e, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &inflight{done: make(chan struct{})}
	a.inflight[fp] = fl
	a.mu.Unlock()

	fl.e, fl.err = a.build(ctx, q, fp)
	close(fl.done)

	a.mu.Lock()
	delete(a.inflight, fp)
	if fl.err == nil {
		old := a.cache.Load()
		next := make(map[uint64]*entry, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
		next[fp] = fl.e
		a.cache.Store(&next)
	}
	a.mu.Unlock()
	return fl.e, fl.err
}

// build produces the entry for one key: from the on-disk store when a
// matching artifact exists, from the solvers otherwise (persisting the
// result for the next process).
func (a *Advisor) build(ctx context.Context, q Query, fp uint64) (*entry, error) {
	if a.dir != "" {
		art, err := LoadArtifact(ArtifactPath(a.dir, fp))
		switch {
		case err == nil && art.Fingerprint == fp && art.matches(q):
			e, rerr := entryFromArtifact(art)
			if rerr == nil {
				a.storeHits.Inc()
				return e, nil
			}
			a.storeErrs.Inc()
		case err == nil, errors.Is(err, ErrNotExist):
			// A well-formed artifact for a different key (collision or
			// doctored store) or no artifact at all: build fresh.
		default:
			a.storeErrs.Inc()
		}
	}
	start := time.Now()
	e, err := computeEntry(ctx, q, fp)
	if err != nil {
		a.buildErrs.Inc()
		if cacheableError(ctx, err) {
			// The error is a pure function of the key fields: publish
			// it so the repeat query costs one map probe, not a
			// rebuild. Negative entries live in memory only — the
			// store holds artifacts, and an error has none.
			return &entry{err: err}, nil
		}
		return nil, err
	}
	a.builds.Inc()
	a.buildNS.Observe(float64(time.Since(start)))
	if a.dir != "" {
		if werr := SaveArtifact(ArtifactPath(a.dir, fp), e.art); werr != nil {
			a.storeErrs.Inc() // serve from memory; the store heals on the next build
		} else {
			a.storeWrites.Inc()
		}
	}
	return e, nil
}

// cacheableError reports whether a build error may be cached as a
// negative entry: only errors that are deterministic consequences of
// the query key qualify. A context cancellation or deadline — whether
// surfaced through err or visible on ctx after a truncated build —
// must not poison the key for later, patient callers.
func cacheableError(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// computeEntry runs the same constructors and solvers the CLI runs.
func computeEntry(ctx context.Context, q Query, fp uint64) (*entry, error) {
	art := &Artifact{
		Fingerprint: fp,
		Mode:        q.Mode,
		R:           q.R,
		Task:        q.Task,
		TaskDisc:    q.TaskDisc,
		Ckpt:        q.Ckpt,
	}
	ckpt, err := lawspec.Parse(q.Ckpt)
	if err != nil {
		return nil, err
	}
	switch q.Mode {
	case ModePreempt:
		p, err := core.TryNewPreemptible(q.R, ckpt)
		if err != nil {
			return nil, err
		}
		sol := p.OptimalX()
		pess := p.Pessimistic()
		lo, hi := p.Bounds()
		art.Preempt = &PreemptTable{
			X: sol.X, ExpectedWork: sol.ExpectedWork,
			Method: sol.Method, Interior: sol.Interior,
			PessX: pess.X, PessWork: pess.ExpectedWork,
			Gain: p.Gain(),
			A:    lo, B: hi,
		}
		return &entry{art: art}, nil

	case ModeStatic:
		s, err := buildStatic(q, ckpt)
		if err != nil {
			return nil, err
		}
		sol := s.Optimize()
		art.Static = &StaticTable{YOpt: sol.YOpt, FOpt: sol.FOpt, NOpt: sol.NOpt, ENOpt: sol.ENOpt}
		return &entry{art: art}, nil

	case ModeDynamic:
		d, err := buildDynamic(q, ckpt)
		if err != nil {
			return nil, err
		}
		tbl, err := d.Table(ctx)
		if err != nil {
			return nil, err
		}
		dt := &DynamicTable{Coeff: tbl}
		switch w, err := d.Intersection(); {
		case err == nil:
			dt.WInt, dt.HasWInt = w, true
		case errors.Is(err, core.ErrNoIntersection):
			// Checkpointing immediately is never (or always) the better
			// option; the per-state decision still answers exactly.
		default:
			return nil, err
		}
		art.Dynamic = dt
		return &entry{art: art, dyn: d}, nil
	}
	return nil, fmt.Errorf("advisor: unknown mode %q", q.Mode)
}

// entryFromArtifact rebuilds the live decision objects around a loaded
// artifact: laws re-parsed, the dynamic coefficient table installed
// verbatim so no quadrature runs and decisions stay bit-identical to
// the build that produced the artifact.
func entryFromArtifact(art *Artifact) (*entry, error) {
	if art.Mode != ModeDynamic {
		return &entry{art: art}, nil
	}
	if art.Dynamic == nil {
		return nil, errors.New("advisor: dynamic artifact has no table")
	}
	ckpt, err := lawspec.Parse(art.Ckpt)
	if err != nil {
		return nil, err
	}
	d, err := buildDynamic(Query{Mode: art.Mode, R: art.R, Task: art.Task, TaskDisc: art.TaskDisc, Ckpt: art.Ckpt}, ckpt)
	if err != nil {
		return nil, err
	}
	if err := d.InstallTable(art.Dynamic.Coeff); err != nil {
		return nil, err
	}
	return &entry{art: art, dyn: d}, nil
}

// buildStatic constructs the Section 4.2 problem from the query's task
// law (continuous or discrete).
func buildStatic(q Query, ckpt dist.Continuous) (*core.Static, error) {
	if q.TaskDisc != "" {
		law, err := lawspec.ParseDiscrete(q.TaskDisc)
		if err != nil {
			return nil, err
		}
		task, ok := law.(dist.SummableDiscrete)
		if !ok {
			return nil, fmt.Errorf("advisor: task law %v does not support IID summation", law)
		}
		return core.TryNewStaticDiscrete(q.R, task, ckpt)
	}
	law, err := lawspec.Parse(q.Task)
	if err != nil {
		return nil, err
	}
	task, ok := law.(dist.Summable)
	if !ok {
		return nil, fmt.Errorf("advisor: task law %v does not support IID summation; use norm, gamma, exp or det", law)
	}
	return core.TryNewStatic(q.R, task, ckpt)
}

// buildDynamic constructs the Section 4.3 problem from the query's task
// law (continuous or discrete).
func buildDynamic(q Query, ckpt dist.Continuous) (*core.Dynamic, error) {
	if q.TaskDisc != "" {
		law, err := lawspec.ParseDiscrete(q.TaskDisc)
		if err != nil {
			return nil, err
		}
		return core.TryNewDynamicDiscrete(q.R, law, ckpt)
	}
	law, err := lawspec.Parse(q.Task)
	if err != nil {
		return nil, err
	}
	return core.TryNewDynamic(q.R, law, ckpt)
}

// answer materializes the flat Answer for this entry. Value-typed and
// allocation-free: every string it carries is shared with the entry.
func (e *entry) answer(fp uint64, q Query) Answer {
	ans := Answer{Mode: e.art.Mode, Fingerprint: Hex64(fp), R: e.art.R}
	switch {
	case e.art.Preempt != nil:
		t := e.art.Preempt
		ans.X, ans.ExpectedWork = t.X, t.ExpectedWork
		ans.Method, ans.Interior = t.Method, t.Interior
		ans.PessX, ans.PessWork = t.PessX, t.PessWork
		ans.Gain = t.Gain
	case e.art.Static != nil:
		t := e.art.Static
		ans.NOpt, ans.ENOpt, ans.YOpt = t.NOpt, t.ENOpt, t.YOpt
	case e.art.Dynamic != nil:
		t := e.art.Dynamic
		ans.WInt, ans.HasWInt = t.WInt, t.HasWInt
		ans.Work, ans.Elapsed = q.Work, q.elapsed()
		ans.CheckpointNow = e.dyn.ShouldCheckpointAt(ans.Work, ans.Elapsed)
	}
	return ans
}

// --- Fingerprinting ---------------------------------------------------

// Fingerprint parts are hashed exactly like ckpt.Fingerprint hashes
// them (FNV-1a, NUL separator after every part), but incrementally and
// without materializing the part strings, so the cache-hit path does
// not allocate. FingerprintParts returns the equivalent part list; the
// tests pin ckpt.Fingerprint(FingerprintParts(q)...) == q.fingerprint().
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fingerprintVersion names the key schema; bump it when the fingerprint
// input set changes, so stale store artifacts miss instead of mislead.
const fingerprintVersion = "advise/v1"

func fpString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h * fnvPrime64 // the NUL separator: h ^ 0 == h
}

func fpBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h * fnvPrime64
}

// fingerprint hashes the key fields of the query (never the decision
// state). The R rendering is the exact hex float ('x' format), so two
// R values share a fingerprint iff they share a bit pattern.
func (q Query) fingerprint() uint64 {
	h := uint64(fnvOffset64)
	h = fpString(h, fingerprintVersion)
	h = fpString(h, q.Mode)
	var buf [40]byte
	b := append(buf[:0], "R="...)
	b = strconv.AppendFloat(b, q.R, 'x', -1, 64)
	h = fpBytes(h, b)
	h = fpBytesPrefix(h, "task=", q.Task)
	h = fpBytesPrefix(h, "taskdisc=", q.TaskDisc)
	h = fpBytesPrefix(h, "ckpt=", q.Ckpt)
	return h
}

// fpBytesPrefix hashes prefix+s as one part (one trailing separator).
func fpBytesPrefix(h uint64, prefix, s string) uint64 {
	for i := 0; i < len(prefix); i++ {
		h = (h ^ uint64(prefix[i])) * fnvPrime64
	}
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h * fnvPrime64
}

// FingerprintParts renders the query key as the ordered part list whose
// ckpt.Fingerprint hash equals Advise's fingerprint — the bridge that
// lets tests and tools reproduce the content address.
func FingerprintParts(q Query) []string {
	return []string{
		fingerprintVersion,
		q.Mode,
		"R=" + strconv.FormatFloat(q.R, 'x', -1, 64),
		"task=" + q.Task,
		"taskdisc=" + q.TaskDisc,
		"ckpt=" + q.Ckpt,
	}
}
