package advisor

import (
	"encoding/json"
	"testing"

	"reskit/internal/ckpt"
)

// FuzzDecodeQuery hammers the request decoder: no input may panic, any
// input that decodes must fingerprint identically to the canonical
// ckpt.Fingerprint rendering (the content address stays reproducible
// for arbitrary field values), and a decoded query must survive a
// marshal/unmarshal round trip unchanged — the wire form is lossless.
func FuzzDecodeQuery(f *testing.F) {
	f.Add([]byte(`{"mode":"dynamic","r":10,"task":"exp:0.3","ckpt":"uniform:0.3,0.7","work":2.5}`))
	f.Add([]byte(`{"mode":"preempt","r":10,"ckpt":"exp:0.5@[1,5]"}`))
	f.Add([]byte(`{"mode":"static","r":1e300,"taskdisc":"poisson:3","ckpt":"det:1","elapsed":-1}`))
	f.Add([]byte(`{"queries":[{}]}`))
	f.Add([]byte(`{"r":"10"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"mode":"?","r":1e-310,"ckpt":"\xff"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeQuery(data)
		if err != nil {
			return
		}
		if got, want := q.fingerprint(), ckpt.Fingerprint(FingerprintParts(q)...); got != want {
			t.Fatalf("fingerprint %016x != canonical %016x for %+v", got, want, q)
		}
		q.Validate() //nolint:errcheck // must not panic, outcome is free

		wire, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("re-marshal of decoded query failed: %v", err)
		}
		q2, err := DecodeQuery(wire)
		if err != nil {
			t.Fatalf("round trip failed to decode: %v", err)
		}
		if q2 != q {
			t.Fatalf("round trip changed the query:\n%+v\n%+v", q, q2)
		}
	})
}
