// The chaos soak: run the engine's full durability stack — retry
// budgets, per-attempt deadlines, keep-going mode, snapshot rotation and
// resume — while this package attacks it from below (snapshot writes
// dying ENOSPC/EIO-style) and from within (job attempts erroring and
// hanging). The acceptance bar is the paper's own: every run that
// eventually completes must be bit-identical to an undisturbed one, at
// every worker count.
package chaos_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"reskit/internal/atomicio"
	"reskit/internal/chaos"
	"reskit/internal/engine"
	"reskit/internal/rng"
)

const soakJobs = 24

// soakJobsFor builds deterministic hash-style jobs, optionally routed
// through a chaos JobPlane that decides each attempt's fate.
func soakJobsFor(n int, plane *chaos.JobPlane) []engine.Job {
	jobs := make([]engine.Job, n)
	for i := range jobs {
		i := i
		jobs[i] = engine.Job{
			Name:   fmt.Sprintf("soak%d", i),
			Stream: uint64(i),
			Run: func(ctx context.Context, src *rng.Source) (engine.JobResult, error) {
				if plane != nil {
					switch plane.Next(i) {
					case chaos.FateErr:
						return engine.JobResult{}, plane.Errf(i)
					case chaos.FateHang:
						<-ctx.Done()
						return engine.JobResult{}, ctx.Err()
					}
				}
				if err := ctx.Err(); err != nil {
					return engine.JobResult{}, err
				}
				return engine.JobResult{Payload: binary.LittleEndian.AppendUint64(nil, src.Uint64())}, nil
			},
		}
	}
	return jobs
}

func undisturbed(t *testing.T, n int) *engine.Result {
	t.Helper()
	res, err := engine.Run(context.Background(), engine.Spec{
		Jobs: soakJobsFor(n, nil), Seed: 1234, Fingerprint: 99, Workers: 2,
	})
	if err != nil {
		t.Fatalf("undisturbed reference run: %v", err)
	}
	return res
}

// TestChaosSoak is the acceptance soak from the issue: >=5% fault rates
// on both planes, workers {1, 4, 8}, keep-going degraded runs resumed
// until everything completes, aggregates bit-identical to the
// undisturbed run.
func TestChaosSoak(t *testing.T) {
	ref := undisturbed(t, soakJobs)

	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			snap := filepath.Join(dir, "soak.ckpt")

			inj := chaos.NewInjector(chaos.Config{
				Seed:       uint64(1000 + workers),
				WriteErr:   0.25,
				SyncErr:    0.10,
				RenameErr:  0.10,
				PathPrefix: dir,
			})
			atomicio.SetInjector(inj)
			defer atomicio.SetInjector(nil)

			// One plane across all rounds: attempt counters advance
			// through resumes, so persistent bad luck cannot pin a job
			// into permanent failure forever.
			plane := chaos.NewJobPlane(chaos.JobFaults{
				Seed:     uint64(2000 + workers),
				ErrRate:  0.20,
				HangRate: 0.08,
			}, soakJobs)

			var res *engine.Result
			var log bytes.Buffer
			completed := false
			for round := 0; round < 40 && !completed; round++ {
				spec := engine.Spec{
					Jobs:        soakJobsFor(soakJobs, plane),
					Seed:        1234,
					Fingerprint: 99,
					Workers:     workers,
					Log:         &log,
					Checkpoint: engine.Checkpoint{
						Path:     snap,
						Interval: time.Nanosecond, // snapshot on every commit: maximum attack surface
						Resume:   round > 0,
					},
					Failure: engine.Failure{
						Retries:    6,
						Backoff:    time.Millisecond,
						MaxBackoff: 4 * time.Millisecond,
						JobTimeout: 250 * time.Millisecond,
						KeepGoing:  true,
					},
				}
				var err error
				res, err = engine.Run(context.Background(), spec)
				if res.Done() == soakJobs {
					completed = true
					break
				}
				if err == nil {
					t.Fatalf("round %d: incomplete run (%d/%d) returned nil error",
						round, res.Done(), soakJobs)
				}
				// Degraded rounds must fail with structured job errors,
				// not an opaque string.
				var je *engine.JobError
				var se *engine.SnapshotError
				if !errors.As(err, &je) && !errors.As(err, &se) {
					t.Fatalf("round %d: unstructured error: %v", round, err)
				}
				if len(res.Failed) > 0 && !errors.As(err, &je) {
					t.Fatalf("round %d: %d failed jobs but no JobError in %v",
						round, len(res.Failed), err)
				}
			}
			if !completed {
				t.Fatalf("soak did not converge in 40 rounds; log tail: %s", tail(log.String(), 800))
			}
			for i := range ref.Payloads {
				if !bytes.Equal(res.Payloads[i], ref.Payloads[i]) {
					t.Fatalf("payload %d differs from the undisturbed run", i)
				}
			}
			// The soak must not pass vacuously: both planes fired.
			if st := inj.Stats(); st.Injected() == 0 {
				t.Fatalf("disk fault plane injected nothing: %+v", st)
			}
			errs, hangs := plane.Injected()
			if errs == 0 || hangs == 0 {
				t.Fatalf("job fault plane too quiet: errs=%d hangs=%d", errs, hangs)
			}
			t.Logf("disk faults %+v; job errs=%d hangs=%d", inj.Stats(), errs, hangs)
		})
	}
}

// TestChaosSoakFailFast drives the no-keep-going path: with chaos on the
// disk only, runs either succeed bit-identically or fail loudly — and a
// retry budget eventually pushes them through.
func TestChaosSoakFailFast(t *testing.T) {
	ref := undisturbed(t, soakJobs)

	dir := t.TempDir()
	snap := filepath.Join(dir, "failfast.ckpt")
	inj := chaos.NewInjector(chaos.Config{
		Seed:       77,
		WriteErr:   0.20,
		SyncErr:    0.10,
		RenameErr:  0.05,
		PathPrefix: dir,
	})
	atomicio.SetInjector(inj)
	defer atomicio.SetInjector(nil)

	plane := chaos.NewJobPlane(chaos.JobFaults{Seed: 78, ErrRate: 0.15}, soakJobs)
	var res *engine.Result
	completed := false
	for round := 0; round < 40 && !completed; round++ {
		spec := engine.Spec{
			Jobs:        soakJobsFor(soakJobs, plane),
			Seed:        1234,
			Fingerprint: 99,
			Workers:     4,
			Checkpoint:  engine.Checkpoint{Path: snap, Interval: time.Nanosecond, Resume: round > 0},
			Failure:     engine.Failure{Retries: 4, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		}
		var err error
		res, err = engine.Run(context.Background(), spec)
		if res.Done() == soakJobs {
			completed = true
			break
		}
		if err == nil {
			t.Fatalf("round %d: incomplete run returned nil error", round)
		}
	}
	if !completed {
		t.Fatal("fail-fast soak did not converge in 40 rounds")
	}
	for i := range ref.Payloads {
		if !bytes.Equal(res.Payloads[i], ref.Payloads[i]) {
			t.Fatalf("payload %d differs from the undisturbed run", i)
		}
	}
	if st := inj.Stats(); st.Injected() == 0 {
		t.Fatalf("disk fault plane injected nothing: %+v", st)
	}
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n:]
}
