package chaos

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"reskit/internal/atomicio"
)

// drive replays a fixed operation sequence against an injector and
// returns the outcomes, so determinism can be asserted injector against
// injector.
func drive(in *Injector) []string {
	ops := []struct {
		op   atomicio.Op
		path string
		n    int
	}{
		{atomicio.OpWrite, "/tmp/chaos/a", 100},
		{atomicio.OpSync, "/tmp/chaos/a", 0},
		{atomicio.OpRename, "/tmp/chaos/a", 0},
		{atomicio.OpWrite, "/tmp/chaos/b", 64},
		{atomicio.OpWrite, "/tmp/chaos/a", 100},
		{atomicio.OpSync, "/tmp/chaos/b", 0},
		{atomicio.OpRename, "/tmp/chaos/b", 0},
		{atomicio.OpWrite, "/tmp/chaos/a", 100},
	}
	var out []string
	for _, o := range ops {
		short, err := in.Fault(o.op, o.path, o.n)
		if err == nil {
			out = append(out, "ok")
		} else {
			out = append(out, err.Error())
			if o.op == atomicio.OpWrite && (short < 0 || short >= o.n) {
				out = append(out, "BAD SHORT")
			}
		}
	}
	return out
}

func TestInjectorDeterministicPerPath(t *testing.T) {
	cfg := Config{Seed: 7, WriteErr: 0.5, SyncErr: 0.5, RenameErr: 0.5}
	a := drive(NewInjector(cfg))
	b := drive(NewInjector(cfg))
	if len(a) != len(b) {
		t.Fatalf("outcome lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	hit := false
	for _, o := range a {
		if o != "ok" {
			hit = true
		}
	}
	if !hit {
		t.Fatal("50% fault rates injected nothing over 8 operations")
	}
}

func TestInjectorPathSubstreamsIndependent(t *testing.T) {
	// Interleaving operations on another path must not change the fate
	// sequence path "a" experiences.
	cfg := Config{Seed: 11, WriteErr: 0.5}
	solo := NewInjector(cfg)
	mixed := NewInjector(cfg)
	var a1, a2 []bool
	for i := 0; i < 32; i++ {
		_, err := solo.Fault(atomicio.OpWrite, "/p/a", 10)
		a1 = append(a1, err != nil)
		mixed.Fault(atomicio.OpWrite, "/p/noise", 10)
		_, err = mixed.Fault(atomicio.OpWrite, "/p/a", 10)
		a2 = append(a2, err != nil)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("op %d on /p/a changed fate due to unrelated traffic", i)
		}
	}
}

func TestInjectorErrnoAndStats(t *testing.T) {
	in := NewInjector(Config{Seed: 3, WriteErr: 1, SyncErr: 1, RenameErr: 1})
	if _, err := in.Fault(atomicio.OpWrite, "/x", 8); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write fault = %v, want ENOSPC", err)
	}
	if _, err := in.Fault(atomicio.OpSync, "/x", 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync fault = %v, want EIO", err)
	}
	if _, err := in.Fault(atomicio.OpRename, "/x", 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename fault = %v, want EIO", err)
	}
	st := in.Stats()
	if st.Ops != 3 || st.WriteErrs != 1 || st.SyncErrs != 1 || st.RenameErrs != 1 || st.Injected() != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInjectorPathPrefixFilter(t *testing.T) {
	in := NewInjector(Config{Seed: 1, WriteErr: 1, PathPrefix: "/attack/"})
	if _, err := in.Fault(atomicio.OpWrite, "/safe/file", 8); err != nil {
		t.Fatalf("out-of-prefix path faulted: %v", err)
	}
	if _, err := in.Fault(atomicio.OpWrite, "/attack/file", 8); err == nil {
		t.Fatal("in-prefix path not faulted at rate 1")
	}
	if st := in.Stats(); st.Ops != 1 {
		t.Fatalf("filtered ops must not count: %+v", st)
	}
}

func TestInjectorLatency(t *testing.T) {
	in := NewInjector(Config{Seed: 5, Latency: time.Microsecond, LatencyRate: 1})
	in.Fault(atomicio.OpWrite, "/x", 8)
	if st := in.Stats(); st.Delays != 1 {
		t.Fatalf("delays = %d, want 1", st.Delays)
	}
}

func TestJobPlaneDeterministicAcrossInterleavings(t *testing.T) {
	f := JobFaults{Seed: 9, ErrRate: 0.3, HangRate: 0.2}
	// Plane A: jobs drawn in order; plane B: interleaved. Per-(job,
	// attempt) fates must match exactly.
	a := NewJobPlane(f, 4)
	b := NewJobPlane(f, 4)
	var fa, fb [4][]Fate
	for j := 0; j < 4; j++ {
		for att := 0; att < 8; att++ {
			fa[j] = append(fa[j], a.Next(j))
		}
	}
	for att := 0; att < 8; att++ {
		for j := 3; j >= 0; j-- {
			fb[j] = append(fb[j], b.Next(j))
		}
	}
	for j := 0; j < 4; j++ {
		for att := range fa[j] {
			if fa[j][att] != fb[j][att] {
				t.Fatalf("job %d attempt %d: fate %v vs %v", j, att, fa[j][att], fb[j][att])
			}
		}
	}
	errs, hangs := a.Injected()
	if errs == 0 || hangs == 0 {
		t.Fatalf("30%%/20%% rates over 32 draws injected errs=%d hangs=%d", errs, hangs)
	}
}

func TestJobPlaneZeroRatesAreQuiet(t *testing.T) {
	p := NewJobPlane(JobFaults{Seed: 1}, 2)
	for i := 0; i < 64; i++ {
		if f := p.Next(i % 2); f != FateOK {
			t.Fatalf("zero-rate plane returned %v", f)
		}
	}
}
