package chaos

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"

	"reskit/internal/rng"
)

// NetFaults sets the per-request fault rates of a NetPlane — the
// network analogue of the disk Injector. Rates are probabilities in
// [0, 1]; the zero value injects nothing.
type NetFaults struct {
	// Seed drives the per-path decision substreams; the same seed
	// reproduces the same fault sequence for the same request order on
	// each path.
	Seed uint64

	// DropReq is the probability a request fails before reaching the
	// peer (connection reset on send): the peer never saw it.
	DropReq float64

	// DropResp is the probability the request reaches the peer — its
	// side effects happen — but the response is lost and an error is
	// returned instead. This is the nasty half of at-least-once
	// delivery: the caller retries a request the peer already executed,
	// so the protocol's idempotency is what keeps state correct.
	DropResp float64

	// DupReq is the probability the request is transparently sent
	// twice, the first response discarded — a retransmitting middlebox.
	// The peer must deduplicate.
	DupReq float64

	// Latency, when positive, stalls a request before sending with
	// probability LatencyRate — enough to push a slow peer past lease
	// deadlines.
	Latency     time.Duration
	LatencyRate float64

	// PathPrefix restricts the attack to URL paths with this prefix
	// ("" attacks every request through the plane).
	PathPrefix string
}

// NetStats counts what a NetPlane actually did.
type NetStats struct {
	Requests  int64 // requests consulted (after PathPrefix filtering)
	DropsReq  int64
	DropsResp int64
	Dups      int64
	Delays    int64
}

// Injected returns the total injected network faults (delays excluded).
func (s NetStats) Injected() int64 { return s.DropsReq + s.DropsResp + s.Dups }

// NetPlane is a deterministic fault-injecting http.RoundTripper: it
// wraps a real transport and attacks the requests flowing through it
// with drops, duplications and stalls. Like the disk Injector, each URL
// path owns one decision substream, so the fault sequence a given
// endpoint experiences depends only on the seed and that endpoint's
// request order. Safe for concurrent use.
//
// Requests whose body cannot be replayed (no GetBody) are exempt from
// DropReq-after-send semantics and duplication — in this repository
// every protocol request is built from a byte slice, so GetBody is
// always present.
type NetPlane struct {
	f    NetFaults
	base http.RoundTripper

	mu    sync.Mutex
	paths map[string]*rng.Source

	requests, dropsReq, dropsResp, dups, delays int64
}

// NewNetPlane wraps base (nil: http.DefaultTransport) with the fault
// plane for f.
func NewNetPlane(f NetFaults, base http.RoundTripper) *NetPlane {
	if base == nil {
		base = http.DefaultTransport
	}
	return &NetPlane{f: f, base: base, paths: make(map[string]*rng.Source)}
}

// Stats snapshots the injection counters.
func (p *NetPlane) Stats() NetStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return NetStats{
		Requests:  p.requests,
		DropsReq:  p.dropsReq,
		DropsResp: p.dropsResp,
		Dups:      p.dups,
		Delays:    p.delays,
	}
}

// netFate is one request's drawn verdict.
type netFate struct {
	delay    bool
	dropReq  bool
	dropResp bool
	dup      bool
}

// draw decides a request's fate on its path's substream.
func (p *NetPlane) draw(path string) netFate {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requests++
	src := p.paths[path]
	if src == nil {
		src = rng.NewStream(p.f.Seed^chaosSalt, hashPath(path))
		p.paths[path] = src
	}
	var f netFate
	f.delay = p.f.Latency > 0 && src.Float64() < p.f.LatencyRate
	// One uniform classifies the exclusive faults, so their rates add.
	u := src.Float64()
	switch {
	case u < p.f.DropReq:
		f.dropReq = true
		p.dropsReq++
	case u < p.f.DropReq+p.f.DropResp:
		f.dropResp = true
		p.dropsResp++
	case u < p.f.DropReq+p.f.DropResp+p.f.DupReq:
		// The counter is RoundTrip's: a bodyless request cannot be
		// duplicated, so the fate falls through to a single send there
		// and must not be booked as an injected fault.
		f.dup = true
	}
	return f
}

// RoundTrip implements http.RoundTripper.
func (p *NetPlane) RoundTrip(req *http.Request) (*http.Response, error) {
	if p.f.PathPrefix != "" && !strings.HasPrefix(req.URL.Path, p.f.PathPrefix) {
		return p.base.RoundTrip(req)
	}
	fate := p.draw(req.URL.Path)
	if fate.delay {
		p.mu.Lock()
		p.delays++
		p.mu.Unlock()
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(p.f.Latency):
		}
	}
	switch {
	case fate.dropReq:
		return nil, fmt.Errorf("chaos: injected request drop on %s: %w", req.URL.Path, syscall.ECONNRESET)
	case fate.dropResp:
		resp, err := p.base.RoundTrip(req)
		if err != nil {
			return nil, err // the real network beat us to it
		}
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: injected response drop on %s (request delivered): %w",
			req.URL.Path, syscall.ECONNRESET)
	case fate.dup && req.GetBody != nil:
		resp, err := p.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		dup, err := cloneRequest(req)
		if err != nil {
			return nil, fmt.Errorf("chaos: duplicating %s: %w", req.URL.Path, err)
		}
		p.mu.Lock()
		p.dups++
		p.mu.Unlock()
		return p.base.RoundTrip(dup)
	default:
		return p.base.RoundTrip(req)
	}
}

// cloneRequest rebuilds a request with a fresh body for re-sending.
func cloneRequest(req *http.Request) (*http.Request, error) {
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	dup := req.Clone(req.Context())
	dup.Body = body
	return dup, nil
}
