// Package chaos is the repository's self-inflicted fault plane: it
// attacks the durability stack (internal/atomicio, internal/ckpt,
// internal/engine) with the very failures the paper's checkpointing
// model studies — dying disks, hanging work, transient errors — so the
// "kill-and-resume is bit-identical" claims are tested against hostile
// hardware, not just clean interruption.
//
// Two planes are provided. Injector implements atomicio.Injector:
// ENOSPC-style short writes, fsync and rename failures, and extra
// latency, decided per primitive operation. JobPlane decides the fate
// of engine job attempts: transient errors and hangs (which a per-job
// deadline converts into timeouts). Both draw from deterministic rng
// substreams in the same discipline as internal/fault — an Injector
// keys a substream per destination path, a JobPlane per (job, attempt)
// — so a chaos run is reproducible from its seed alone, independent of
// worker count or scheduling.
package chaos

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"reskit/internal/atomicio"
	"reskit/internal/rng"
)

// chaosSalt decorrelates chaos decision substreams from every substream
// the simulations themselves draw from the same seed.
const chaosSalt = 0x6b5c3a8f9d21e047

// Config sets the per-operation fault rates of an Injector. Rates are
// probabilities in [0, 1]; zero disables that fault. The zero Config
// injects nothing.
type Config struct {
	// Seed drives every decision substream; the same seed reproduces
	// the same faults for the same operation sequence.
	Seed uint64

	// WriteErr is the probability that a Write into the temporary file
	// fails ENOSPC-style: a random prefix of the data still lands (a
	// genuine short write), then the error surfaces.
	WriteErr float64

	// SyncErr is the probability that the pre-rename fsync fails (EIO).
	SyncErr float64

	// RenameErr is the probability that the final rename fails (EIO).
	RenameErr float64

	// Latency, when positive, is injected before an operation with
	// probability LatencyRate — flaky-NFS-style stalls.
	Latency     time.Duration
	LatencyRate float64

	// PathPrefix restricts the attack to destination paths with this
	// prefix ("" attacks everything). Tests point it at their temp
	// directory so parallel tests never fault each other's files.
	PathPrefix string
}

// Stats counts what an Injector actually did, so a soak test can assert
// its faults really fired rather than passing vacuously.
type Stats struct {
	Ops        int64 // operations consulted (after PathPrefix filtering)
	WriteErrs  int64
	SyncErrs   int64
	RenameErrs int64
	Delays     int64
}

// Injected returns the total number of injected faults (delays
// excluded).
func (s Stats) Injected() int64 { return s.WriteErrs + s.SyncErrs + s.RenameErrs }

// Injector is a deterministic atomicio fault plane. Each destination
// path owns one decision substream (keyed by a hash of the path), so
// the fault sequence a given file experiences depends only on the seed
// and that file's operation order — never on how unrelated files
// interleave. Install with atomicio.SetInjector; safe for concurrent
// use.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	paths map[string]*rng.Source

	ops, writeErrs, syncErrs, renameErrs, delays atomic.Int64
}

// NewInjector returns an injector for cfg.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg, paths: make(map[string]*rng.Source)}
}

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Ops:        in.ops.Load(),
		WriteErrs:  in.writeErrs.Load(),
		SyncErrs:   in.syncErrs.Load(),
		RenameErrs: in.renameErrs.Load(),
		Delays:     in.delays.Load(),
	}
}

// Fault implements atomicio.Injector.
func (in *Injector) Fault(op atomicio.Op, path string, n int) (int, error) {
	if in.cfg.PathPrefix != "" && !strings.HasPrefix(path, in.cfg.PathPrefix) {
		return 0, nil
	}
	in.ops.Add(1)

	in.mu.Lock()
	src := in.paths[path]
	if src == nil {
		src = rng.NewStream(in.cfg.Seed^chaosSalt, hashPath(path))
		in.paths[path] = src
	}
	// Draw the fate under the lock: the per-path sequence stays
	// deterministic even when several files are attacked concurrently.
	delay := in.cfg.Latency > 0 && src.Float64() < in.cfg.LatencyRate
	var rate float64
	switch op {
	case atomicio.OpWrite:
		rate = in.cfg.WriteErr
	case atomicio.OpSync:
		rate = in.cfg.SyncErr
	case atomicio.OpRename:
		rate = in.cfg.RenameErr
	}
	hit := rate > 0 && src.Float64() < rate
	short := 0
	if hit && op == atomicio.OpWrite {
		short = src.Intn(n + 1)
	}
	in.mu.Unlock()

	if delay {
		in.delays.Add(1)
		time.Sleep(in.cfg.Latency)
	}
	if !hit {
		return 0, nil
	}
	switch op {
	case atomicio.OpWrite:
		in.writeErrs.Add(1)
		return short, fmt.Errorf("chaos: injected short write (%d/%d bytes) on %s: %w", short, n, path, syscall.ENOSPC)
	case atomicio.OpSync:
		in.syncErrs.Add(1)
		return 0, fmt.Errorf("chaos: injected fsync failure on %s: %w", path, syscall.EIO)
	default:
		in.renameErrs.Add(1)
		return 0, fmt.Errorf("chaos: injected rename failure on %s: %w", path, syscall.EIO)
	}
}

// hashPath keys a path's decision substream.
func hashPath(path string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	return h.Sum64()
}

// JobFaults sets the per-attempt fault rates of a JobPlane.
type JobFaults struct {
	// Seed drives the (job, attempt) decision substreams.
	Seed uint64

	// ErrRate is the probability an attempt fails with a transient
	// error before the job's real work runs.
	ErrRate float64

	// HangRate is the probability an attempt hangs — blocking until
	// its context is cancelled, which a per-attempt deadline converts
	// into a retryable timeout.
	HangRate float64
}

// Fate is the chaos verdict for one job attempt.
type Fate uint8

// Attempt fates.
const (
	FateOK   Fate = iota // run the real job
	FateErr              // fail with a transient error
	FateHang             // block until the attempt context dies
)

// JobPlane decides the fate of engine job attempts deterministically:
// attempt a of job i draws one substream keyed by (seed, i, a), so the
// fault pattern is a pure function of the seed and survives any worker
// count, scheduling, or resume boundary. Safe for concurrent use.
type JobPlane struct {
	f        JobFaults
	attempts []atomic.Int64
	errs     atomic.Int64
	hangs    atomic.Int64
}

// NewJobPlane returns a plane for numJobs jobs.
func NewJobPlane(f JobFaults, numJobs int) *JobPlane {
	return &JobPlane{f: f, attempts: make([]atomic.Int64, numJobs)}
}

// Next draws the fate of job i's next attempt. Attempt numbering is
// per-plane, so a fresh plane (e.g. a resumed process) replays the same
// fate sequence from the start.
func (p *JobPlane) Next(i int) Fate {
	attempt := p.attempts[i].Add(1)
	var src rng.Source
	src.Reinit(p.f.Seed^chaosSalt, uint64(i)*0x9e3779b97f4a7c15+uint64(attempt))
	u := src.Float64()
	switch {
	case u < p.f.ErrRate:
		p.errs.Add(1)
		return FateErr
	case u < p.f.ErrRate+p.f.HangRate:
		p.hangs.Add(1)
		return FateHang
	default:
		return FateOK
	}
}

// Errf builds the transient error for a FateErr attempt of job i.
func (p *JobPlane) Errf(i int) error {
	return fmt.Errorf("chaos: injected transient failure on job %d", i)
}

// Injected returns how many attempts the plane faulted (errors, hangs).
func (p *JobPlane) Injected() (errs, hangs int64) {
	return p.errs.Load(), p.hangs.Load()
}
