package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// countingTransport is a fake network: it counts deliveries and answers
// 200 with an empty body.
type countingTransport struct {
	delivered atomic.Int64
}

func (ct *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ct.delivered.Add(1)
	if req.Body != nil {
		io.Copy(io.Discard, req.Body) //nolint:errcheck
		req.Body.Close()
	}
	return &http.Response{
		StatusCode: 200,
		Status:     "200 OK",
		Body:       io.NopCloser(bytes.NewReader(nil)),
		Request:    req,
	}, nil
}

func postReq(t *testing.T, path string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://peer"+path, bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	return req
}

// TestNetPlaneFaultMix: over many requests the plane injects all three
// fault kinds, the bookkeeping adds up, and the base transport sees
// exactly the requests that were delivered (drops before send never
// arrive, duplications arrive twice).
func TestNetPlaneFaultMix(t *testing.T) {
	base := &countingTransport{}
	p := NewNetPlane(NetFaults{Seed: 42, DropReq: 0.1, DropResp: 0.1, DupReq: 0.1}, base)
	const reqs = 400
	for i := 0; i < reqs; i++ {
		resp, err := p.RoundTrip(postReq(t, "/v1/lease"))
		if resp != nil {
			resp.Body.Close()
		}
		_ = err // drops are expected
	}
	s := p.Stats()
	if s.Requests != reqs {
		t.Fatalf("Requests = %d, want %d", s.Requests, reqs)
	}
	if s.DropsReq == 0 || s.DropsResp == 0 || s.Dups == 0 {
		t.Fatalf("some fault kind never fired: %+v", s)
	}
	// DropReq never reaches the base; DropResp reaches it once; DupReq
	// reaches it twice; clean requests once.
	wantDelivered := reqs - s.DropsReq + s.Dups
	if got := base.delivered.Load(); got != wantDelivered {
		t.Fatalf("base transport saw %d requests, want %d (stats %+v)", got, wantDelivered, s)
	}
	// ~10% each over 400 draws: a fault kind outside [15, 75] means the
	// classifier is broken, not unlucky.
	for name, v := range map[string]int64{"dropsReq": s.DropsReq, "dropsResp": s.DropsResp, "dups": s.Dups} {
		if v < 15 || v > 75 {
			t.Fatalf("%s = %d, implausible for rate 0.1 over %d requests", name, v, reqs)
		}
	}
}

// TestNetPlaneDeterminism: the same seed replays the same fate
// sequence on a path; a different seed diverges.
func TestNetPlaneDeterminism(t *testing.T) {
	fates := func(seed uint64) string {
		p := NewNetPlane(NetFaults{Seed: seed, DropReq: 0.15, DropResp: 0.15, DupReq: 0.15}, &countingTransport{})
		var out []byte
		for i := 0; i < 100; i++ {
			resp, err := p.RoundTrip(postReq(t, "/v1/result"))
			if resp != nil {
				resp.Body.Close()
			}
			switch s := p.Stats(); {
			case err != nil && s.DropsReq+s.DropsResp > 0:
				out = append(out, 'x')
			default:
				out = append(out, '.')
			}
		}
		return fmt.Sprintf("%s|%+v", out, p.Stats())
	}
	if a, b := fates(7), fates(7); a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a, b := fates(7), fates(8); a == b {
		t.Fatalf("different seeds produced identical fault sequences")
	}
}

// TestNetPlanePathPrefix: requests outside the attacked prefix pass
// through untouched and uncounted.
func TestNetPlanePathPrefix(t *testing.T) {
	base := &countingTransport{}
	p := NewNetPlane(NetFaults{Seed: 1, DropReq: 1.0, PathPrefix: "/v1/"}, base)
	resp, err := p.RoundTrip(postReq(t, "/metrics"))
	if err != nil {
		t.Fatalf("exempt path was attacked: %v", err)
	}
	resp.Body.Close()
	if _, err := p.RoundTrip(postReq(t, "/v1/lease")); err == nil {
		t.Fatalf("attacked path survived DropReq=1")
	}
	if s := p.Stats(); s.Requests != 1 || s.DropsReq != 1 {
		t.Fatalf("stats %+v, want exactly the /v1/ request counted and dropped", s)
	}
}

// TestNetPlaneLatency: delays fire at the configured rate and actually
// stall the request.
func TestNetPlaneLatency(t *testing.T) {
	base := &countingTransport{}
	p := NewNetPlane(NetFaults{Seed: 3, Latency: 30 * time.Millisecond, LatencyRate: 1.0}, base)
	start := time.Now()
	resp, err := p.RoundTrip(postReq(t, "/v1/lease"))
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("latency injection took only %v", elapsed)
	}
	if s := p.Stats(); s.Delays != 1 {
		t.Fatalf("Delays = %d, want 1", s.Delays)
	}
}
