package reskit

import (
	"reskit/internal/dist"
	"reskit/internal/trace"
)

// Trace is a log of observed durations (checkpoints or tasks) that the
// fitting functions turn into probability laws — the "learned from
// traces of previous checkpoints" loop of the paper's introduction.
type Trace = trace.Trace

// TraceFit is the outcome of fitting one parametric family to a trace.
type TraceFit = trace.Fit

// FitTrace fits all of the paper's parametric families (Normal,
// LogNormal, Exponential, Gamma, Weibull) and returns the AIC-best one.
func FitTrace(t *Trace) (TraceFit, error) { return trace.FitBest(t) }

// FitTraceAll returns every successful family fit, best (lowest AIC)
// first.
func FitTraceAll(t *Trace) ([]TraceFit, error) { return trace.FitAll(t) }

// CheckpointLawFromTrace learns the D_C of Section 3 from a trace: the
// AIC-best family truncated to [a, b]. Pass NaN bounds to derive them
// from the observed range.
func CheckpointLawFromTrace(t *Trace, a, b float64) (*dist.Truncated, TraceFit, error) {
	return trace.CheckpointLaw(t, a, b)
}
