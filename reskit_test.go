package reskit_test

import (
	"math"
	"testing"

	"reskit"
)

func TestQuickstartPreemptible(t *testing.T) {
	law := reskit.Truncate(reskit.Normal(5, 0.4), 3, 7)
	prob := reskit.NewPreemptible(60, law)
	sol := prob.OptimalX()
	if !(sol.X >= 3 && sol.X <= 7) {
		t.Fatalf("X_opt %g outside support", sol.X)
	}
	if sol.ExpectedWork <= 0 || sol.ExpectedWork >= 60 {
		t.Fatalf("E(W) %g implausible", sol.ExpectedWork)
	}
	if prob.Gain() < 1 {
		t.Fatalf("gain %g < 1", prob.Gain())
	}
}

func TestPublicDistributionConstructors(t *testing.T) {
	laws := []reskit.Continuous{
		reskit.Uniform(1, 2),
		reskit.Exponential(0.5),
		reskit.Normal(3, 0.5),
		reskit.LogNormal(0, 1),
		reskit.LogNormalFromMoments(3, 1),
		reskit.Gamma(2, 1),
		reskit.Weibull(1.5, 2),
		reskit.Deterministic(4),
		reskit.TruncatedNormal(5, 0.4),
		reskit.Empirical([]float64{1, 2, 3, 4}),
	}
	r := reskit.NewRNG(1)
	for _, law := range laws {
		x := law.Sample(r)
		lo, hi := law.Support()
		if x < lo || x > hi {
			t.Errorf("%v: sample %g outside [%g, %g]", law, x, lo, hi)
		}
	}
	if reskit.Poisson(3).Mean() != 3 {
		t.Errorf("Poisson mean")
	}
}

func TestQuickstartWorkflow(t *testing.T) {
	ckpt := reskit.TruncatedNormal(5, 0.4)
	static := reskit.NewStatic(30, reskit.Normal(3, 0.5), ckpt)
	sol := static.Optimize()
	if sol.NOpt != 7 {
		t.Fatalf("n_opt = %d, want 7 (paper Fig 5)", sol.NOpt)
	}

	dyn := reskit.NewDynamic(29, reskit.TruncatedNormal(3, 0.5), ckpt)
	w, err := dyn.Intersection()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-20.3) > 0.3 {
		t.Fatalf("W_int = %g, want ~20.3 (paper Fig 8)", w)
	}
}

func TestQuickstartSimulation(t *testing.T) {
	ckpt := reskit.TruncatedNormal(5, 0.4)
	task := reskit.TruncatedNormal(3, 0.5)
	dyn := reskit.NewDynamic(29, task, ckpt)
	cfg := reskit.SimConfig{
		R:        29,
		Task:     task,
		Ckpt:     ckpt,
		Strategy: reskit.DynamicStrategy(dyn),
	}
	agg := reskit.MonteCarlo(cfg, 20000, 1, 0)
	if agg.Trials != 20000 {
		t.Fatalf("trials %d", agg.Trials)
	}
	if agg.Saved.Mean() <= 15 || agg.Saved.Mean() >= 29 {
		t.Fatalf("mean saved %g implausible", agg.Saved.Mean())
	}
	// Oracle dominates.
	oracle := reskit.MonteCarloOracle(cfg, 20000, 1, 0)
	if oracle.Saved.Mean() < agg.Saved.Mean() {
		t.Fatalf("oracle %g < dynamic %g", oracle.Saved.Mean(), agg.Saved.Mean())
	}
}

func TestQuickstartTraceLoop(t *testing.T) {
	// Sample synthetic checkpoint durations, learn D_C, solve.
	truth := reskit.Truncate(reskit.Normal(5, 0.5), 3.5, 6.5)
	r := reskit.NewRNG(7)
	var tr reskit.Trace
	for i := 0; i < 5000; i++ {
		if err := tr.Add(truth.Sample(r)); err != nil {
			t.Fatal(err)
		}
	}
	law, fit, err := reskit.CheckpointLawFromTrace(&tr, math.NaN(), math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 5000 {
		t.Fatalf("fit.N = %d", fit.N)
	}
	prob := reskit.NewPreemptible(60, law)
	solLearned := prob.OptimalX()
	solTruth := reskit.NewPreemptible(60, truth).OptimalX()
	if math.Abs(solLearned.X-solTruth.X) > 0.5 {
		t.Fatalf("learned X_opt %g vs truth %g", solLearned.X, solTruth.X)
	}
}

func TestCampaignFacade(t *testing.T) {
	ckpt := reskit.TruncatedNormal(5, 0.4)
	task := reskit.TruncatedNormal(3, 0.5)
	dyn := reskit.NewDynamic(29, task, ckpt)
	res := reskit.RunCampaign(reskit.CampaignConfig{
		Reservation: reskit.SimConfig{
			R: 29, Recovery: 1, Task: task, Ckpt: ckpt,
			Strategy: reskit.DynamicStrategy(dyn),
		},
		TotalWork: 100,
	}, reskit.NewRNG(3))
	if !res.Completed {
		t.Fatalf("campaign incomplete: %+v", res)
	}
}

func TestStrategyConstructors(t *testing.T) {
	for _, s := range []reskit.Strategy{
		reskit.StaticStrategy(5),
		reskit.PessimisticStrategy(4, 6),
		reskit.ThresholdStrategy(20),
		reskit.NeverStrategy(),
	} {
		if s.Name() == "" {
			t.Errorf("unnamed strategy")
		}
	}
	st := reskit.StrategyState{R: 10, Elapsed: 3, Work: 3}
	if reskit.ThresholdStrategy(2).Decide(st) != reskit.ActionCheckpoint {
		t.Errorf("threshold decision wrong")
	}
	if reskit.NeverStrategy().Decide(st) != reskit.ActionContinue {
		t.Errorf("never decision wrong")
	}
}

func TestExtensionsFacade(t *testing.T) {
	// New laws.
	tri := reskit.Triangular(1, 4, 7.5)
	if math.Abs(tri.Mean()-(1+4+7.5)/3) > 1e-12 {
		t.Errorf("triangular mean %g", tri.Mean())
	}
	par := reskit.Pareto(2, 3)
	if par.Mean() != 3 {
		t.Errorf("pareto mean %g", par.Mean())
	}
	mix := reskit.Mixture([]reskit.Continuous{reskit.Normal(3, 0.3), reskit.Normal(6, 0.3)},
		[]float64{1, 1})
	if math.Abs(mix.Mean()-4.5) > 1e-12 {
		t.Errorf("mixture mean %g", mix.Mean())
	}
	aff := reskit.Affine(reskit.Gamma(25, 0.004), 40, 2)
	if math.Abs(aff.Mean()-6) > 1e-12 {
		t.Errorf("affine mean %g", aff.Mean())
	}

	// A mixture D_C through the preemptible optimizer.
	dc := reskit.Truncate(mix, 1, 8)
	sol := reskit.NewPreemptible(20, dc).OptimalX()
	if !(sol.X >= 1 && sol.X <= 8) {
		t.Errorf("mixture X_opt %g", sol.X)
	}

	// Heterogeneous chain.
	h := reskit.NewHeterogeneous(20, []reskit.TaskSpec{
		{Duration: reskit.Gamma(4, 0.5), Ckpt: reskit.TruncatedNormal(2, 0.3)},
		{Duration: reskit.Gamma(4, 0.5), Ckpt: reskit.TruncatedNormal(2, 0.3)},
	})
	if h.Len() != 2 {
		t.Errorf("chain length %d", h.Len())
	}
	if _, err := h.ShouldCheckpoint(5, 1, 1); err == nil {
		t.Errorf("out-of-range index must error")
	}
	n, _ := reskit.StaticHeteroHeuristic(h)
	if n < 1 || n > 2 {
		t.Errorf("hetero heuristic n=%d", n)
	}

	// DP reference solver.
	dp := reskit.NewDP(29, reskit.TruncatedNormal(3, 0.5), reskit.TruncatedNormal(5, 0.4), 1024)
	dpSol := dp.Solve()
	if dpSol.Value <= 0 || dpSol.Threshold <= 0 {
		t.Errorf("DP solution %+v", dpSol)
	}
}

func TestStochasticRecoveryFacade(t *testing.T) {
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(5, 0.4)
	dyn := reskit.NewDynamic(29, task, ckpt)
	cfg := reskit.SimConfig{
		R: 29, Task: task, Ckpt: ckpt,
		Strategy:    reskit.DynamicStrategy(dyn),
		RecoveryLaw: reskit.TruncatedNormal(1.5, 0.2),
	}
	agg := reskit.MonteCarlo(cfg, 10000, 2, 0)
	if agg.Saved.Mean() <= 0 {
		t.Errorf("nothing saved with stochastic recovery")
	}
}

func TestPlannerFacade(t *testing.T) {
	opts, err := reskit.PlanReservationLength(reskit.PlannerConfig{
		TotalWork:  100,
		Task:       reskit.TruncatedNormal(3, 0.5),
		Ckpt:       reskit.TruncatedNormal(5, 0.4),
		Recovery:   1.5,
		Candidates: []float64{20, 60},
		Trials:     20,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 2 || opts[0].WorkPerCost < opts[1].WorkPerCost {
		t.Errorf("planner frontier wrong: %+v", opts)
	}
}

func TestQueueAwareFacade(t *testing.T) {
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(5, 0.4)
	dyn := reskit.NewDynamic(29, task, ckpt)
	res := reskit.RunWithQueue(reskit.SchedConfig{
		Campaign: reskit.CampaignConfig{
			Reservation: reskit.SimConfig{
				R: 29, Recovery: 1.5, Task: task, Ckpt: ckpt,
				Strategy: reskit.DynamicStrategy(dyn),
			},
			TotalWork: 60,
		},
		Wait: reskit.PowerLawWait(0.5, 1.0, 0.5),
	}, reskit.NewRNG(5))
	if !res.Completed || res.TotalWait <= 0 || res.Makespan <= res.TimeUsed {
		t.Errorf("queue-aware run wrong: %+v", res)
	}

	spans := reskit.CompareReservationLengths(
		reskit.SimConfig{Task: task, Ckpt: ckpt, Recovery: 1.5},
		100,
		reskit.ConstantWait(reskit.Deterministic(10)),
		[]float64{20, 60},
		func(r float64) reskit.Strategy {
			return reskit.DynamicStrategy(reskit.NewDynamic(r, task, ckpt))
		},
		10, 3)
	if len(spans) != 2 || spans[20] <= 0 || spans[60] <= 0 {
		t.Errorf("CompareReservationLengths wrong: %v", spans)
	}
}

func TestFailureFacade(t *testing.T) {
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(2, 0.3)
	cfg := reskit.SimConfig{
		R: 60, Task: task, Ckpt: ckpt,
		Strategy:    reskit.YoungDalyStrategy(25, ckpt.Mean()),
		After:       reskit.ContinueExecution,
		FailureRate: 1.0 / 25,
		Recovery:    0.5,
	}
	agg := reskit.MonteCarlo(cfg, 5000, 3, 0)
	if agg.Saved.Mean() <= 0 {
		t.Errorf("Young/Daly under failures saved nothing")
	}
	if reskit.PeriodicStrategy(10).Name() == "" {
		t.Errorf("periodic unnamed")
	}
}

func TestBetaFacade(t *testing.T) {
	b := reskit.Beta(2, 3)
	if math.Abs(b.Mean()-0.4) > 1e-12 {
		t.Errorf("Beta mean %g", b.Mean())
	}
	on := reskit.BetaOn(2, 3, 1, 6)
	lo, hi := on.Support()
	if lo != 1 || hi != 6 {
		t.Errorf("BetaOn support [%g, %g]", lo, hi)
	}
	// A Beta-shaped D_C through the preemptible solver: support is
	// already bounded, no truncation required.
	sol := reskit.NewPreemptible(12, on).OptimalX()
	if !(sol.X >= 1 && sol.X <= 6) {
		t.Errorf("X_opt %g", sol.X)
	}
}
