package reskit_test

import (
	"fmt"

	"reskit"
)

// The Section 3 problem: a 10-second reservation with a checkpoint
// duration uniform on [1, 7.5] — the paper's Figure 1(a) instance.
func ExampleNewPreemptible() {
	prob := reskit.NewPreemptible(10, reskit.Uniform(1, 7.5))
	sol := prob.OptimalX()
	fmt.Printf("X_opt = %.1f, E(W) = %.3f\n", sol.X, sol.ExpectedWork)
	fmt.Printf("pessimistic reaches %.0f%% of the optimum\n",
		100*prob.Pessimistic().ExpectedWork/sol.ExpectedWork)
	// Output:
	// X_opt = 5.5, E(W) = 3.115
	// pessimistic reaches 80% of the optimum
}

// The Section 4.2 static strategy on the paper's Figure 5 instance:
// Normal(3, 0.5) tasks, checkpoint ~ N(5, 0.4) truncated to [0, inf),
// R = 30.
func ExampleStatic_Optimize() {
	ckpt := reskit.TruncatedNormal(5, 0.4)
	static := reskit.NewStatic(30, reskit.Normal(3, 0.5), ckpt)
	sol := static.Optimize()
	fmt.Printf("run %d tasks, then checkpoint (E = %.1f)\n", sol.NOpt, sol.ENOpt)
	// Output:
	// run 7 tasks, then checkpoint (E = 21.0)
}

// The Section 4.3 dynamic rule on the paper's Figure 9 instance:
// Gamma(1, 0.5) tasks, checkpoint ~ N(2, 0.4) truncated, R = 10.
func ExampleDynamic_Intersection() {
	dyn := reskit.NewDynamic(10, reskit.Gamma(1, 0.5), reskit.TruncatedNormal(2, 0.4))
	w, err := dyn.Intersection()
	if err != nil {
		panic(err)
	}
	fmt.Printf("checkpoint once accumulated work reaches %.1f\n", w)
	fmt.Printf("at W_n = 5: checkpoint? %v\n", dyn.ShouldCheckpoint(5))
	fmt.Printf("at W_n = 8: checkpoint? %v\n", dyn.ShouldCheckpoint(8))
	// Output:
	// checkpoint once accumulated work reaches 6.4
	// at W_n = 5: checkpoint? false
	// at W_n = 8: checkpoint? true
}

// Building the paper's checkpoint-duration law D_C by truncation
// (Section 3.1) and sampling it reproducibly.
func ExampleTruncate() {
	law := reskit.Truncate(reskit.Exponential(0.5), 1, 5)
	fmt.Printf("support [%.0f, %.0f], P(C <= 3) = %.4f\n",
		1.0, 5.0, law.CDF(3))
	r := reskit.NewRNG(42)
	x := law.Sample(r)
	fmt.Printf("sample inside bounds: %v\n", x >= 1 && x <= 5)
	// Output:
	// support [1, 5], P(C <= 3) = 0.7311
	// sample inside bounds: true
}

// Simulating the Figure 8 instance under the dynamic strategy and
// checking the saved work against the oracle bound.
func ExampleMonteCarlo() {
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(5, 0.4)
	dyn := reskit.NewDynamic(29, task, ckpt)
	cfg := reskit.SimConfig{R: 29, Task: task, Ckpt: ckpt,
		Strategy: reskit.DynamicStrategy(dyn)}
	agg := reskit.MonteCarlo(cfg, 50000, 1, 0)
	oracle := reskit.MonteCarloOracle(cfg, 50000, 1, 0)
	fmt.Printf("dynamic saves %.0f-ish, oracle bound %.0f-ish, ordered: %v\n",
		agg.Saved.Mean(), oracle.Saved.Mean(), agg.Saved.Mean() <= oracle.Saved.Mean())
	// Output:
	// dynamic saves 22-ish, oracle bound 22-ish, ordered: true
}
