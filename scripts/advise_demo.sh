#!/usr/bin/env bash
# Smoke-test the advisor service end to end: start the server, answer a
# batch over HTTP, and require every answer byte-equal (modulo key
# order) to the one-shot CLI path — the bit-identity contract of DESIGN
# §13, exercised through a real socket. Run via `make advise-demo`.
set -euo pipefail

GO=${GO:-go}
OUT=${OUT:-out/advise-demo}
mkdir -p "$OUT"

QUERIES=(
  '{"mode":"preempt","r":10,"ckpt":"exp:0.5@[1,5]"}'
  '{"mode":"static","r":100,"task":"norm:5,0.5","ckpt":"norm:1,0.1@[0,inf]"}'
  '{"mode":"dynamic","r":10,"task":"exp:0.3","ckpt":"uniform:0.3,0.7","work":2.5}'
)

"$GO" build -o "$OUT/advise" ./cmd/advise

# Reference answers through the one-shot CLI path (no server involved).
: > "$OUT/cli.jsonl"
for q in "${QUERIES[@]}"; do
  "$OUT/advise" -q "$q" >> "$OUT/cli.jsonl"
done

# Serve on an ephemeral port with an on-disk store; parse the announced
# address from the startup line.
"$OUT/advise" -listen 127.0.0.1:0 -store "$OUT/store" > "$OUT/server.log" 2>&1 &
SRV=$!
cleanup() { kill "$SRV" 2>/dev/null || true; }
trap cleanup EXIT

ADDR=
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's#^advisor: http://\([^/]*\)/v1/advise .*#\1#p' "$OUT/server.log")
  [ -n "$ADDR" ] && break
  kill -0 "$SRV" 2>/dev/null || { cat "$OUT/server.log"; echo "advise-demo: server died before announcing" >&2; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "advise-demo: no announcement in server.log" >&2; exit 1; }

curl -fsS "http://$ADDR/healthz" > /dev/null

# The same three queries as one batch over HTTP.
printf '{"queries":[%s,%s,%s]}' "${QUERIES[@]}" \
  | curl -fsS -X POST --data-binary @- "http://$ADDR/v1/advise/batch" > "$OUT/batch.json"

jq -ceS '.answers[]' "$OUT/batch.json" > "$OUT/http.jsonl"
jq -ceS . "$OUT/cli.jsonl" > "$OUT/cli-sorted.jsonl"
if ! diff -u "$OUT/cli-sorted.jsonl" "$OUT/http.jsonl"; then
  echo "advise-demo: HTTP answers differ from the CLI path" >&2
  exit 1
fi

# A second identical batch must be pure cache hits.
printf '{"queries":[%s,%s,%s]}' "${QUERIES[@]}" \
  | curl -fsS -X POST --data-binary @- "http://$ADDR/v1/advise/batch" > /dev/null

curl -fsS "http://$ADDR/metrics" > "$OUT/metrics.prom"
grep -q '^# TYPE reskit_advisor_queries counter$' "$OUT/metrics.prom"
grep -q '^reskit_advisor_cache_hits ' "$OUT/metrics.prom"

# The store must have persisted one artifact per distinct fingerprint.
ARTIFACTS=$(find "$OUT/store" -name '*.rkadv' | wc -l)
[ "$ARTIFACTS" -eq 3 ] || { echo "advise-demo: expected 3 artifacts, found $ARTIFACTS" >&2; exit 1; }

# Graceful shutdown on SIGTERM must exit 0.
kill -TERM "$SRV"
if wait "$SRV"; then :; else
  echo "advise-demo: server exited non-zero on SIGTERM" >&2
  exit 1
fi
trap - EXIT

echo "advise-demo: OK (3 answers server==CLI, metrics live, $ARTIFACTS artifacts in $OUT/store)"
