// Trace fitting: learn the checkpoint-duration law from history.
//
// The paper's introduction notes that D_C "can be learned from traces of
// previous checkpoints". This example plays a platform that has logged
// 5000 past checkpoint durations (synthesized here from a hidden truth),
// fits all parametric families by maximum likelihood, selects one by
// AIC, and solves the Section 3 problem with the learned law — then
// reveals the truth and shows how little optimality was lost.
//
//	go run ./examples/trace_fitting
package main

import (
	"fmt"
	"math"

	"reskit"
)

func main() {
	// The hidden truth the platform does not know: checkpoint times are
	// Gamma-distributed with mean 5 s, clipped to [3, 9] by the storage
	// system's retry/timeout behavior.
	truth := reskit.Truncate(reskit.Gamma(25, 0.2), 3, 9)

	// The observable history: 5000 logged durations.
	r := reskit.NewRNG(2024)
	var tr reskit.Trace
	tr.Name = "checkpoint log"
	for i := 0; i < 5000; i++ {
		if err := tr.Add(truth.Sample(r)); err != nil {
			panic(err)
		}
	}
	lo, hi := tr.Range()
	fmt.Printf("observed %d checkpoints: range [%.2f, %.2f] s, mean %.2f s\n\n",
		tr.Len(), lo, hi, tr.Mean())

	// Fit every family; print the AIC ranking.
	fits, err := reskit.FitTraceAll(&tr)
	if err != nil {
		panic(err)
	}
	fmt.Println("model selection (AIC, lower is better):")
	for i, f := range fits {
		marker := "  "
		if i == 0 {
			marker = "->"
		}
		fmt.Printf("  %s %-12s AIC %.1f\n", marker, f.Family, f.AIC())
	}

	// Learn D_C (truncated to the observed range) and solve for a
	// 45-second reservation.
	learned, fit, err := reskit.CheckpointLawFromTrace(&tr, math.NaN(), math.NaN())
	if err != nil {
		panic(err)
	}
	const R = 45
	solLearned := reskit.NewPreemptible(R, learned).OptimalX()
	solTruth := reskit.NewPreemptible(R, truth).OptimalX()
	probTruth := reskit.NewPreemptible(R, truth)

	fmt.Printf("\nlearned law: %v (family %s)\n", learned, fit.Family)
	fmt.Printf("R = %d s:\n", R)
	fmt.Printf("  learned policy: checkpoint %.3f s before the end\n", solLearned.X)
	fmt.Printf("  optimal policy: checkpoint %.3f s before the end\n", solTruth.X)

	// Evaluate the learned policy under the TRUE law: how much expected
	// work does the approximation cost?
	gotten := probTruth.ExpectedWork(solLearned.X)
	fmt.Printf("  expected work under the true law: learned %.4f vs optimal %.4f (%.3f%% lost)\n",
		gotten, solTruth.ExpectedWork, 100*(1-gotten/solTruth.ExpectedWork))
}
