// Multi-reservation campaigns (Sections 1, 2 and 4.4).
//
// An iterative application needs 500 seconds of committed work and runs
// in fixed 29-second reservations with a 1.5-second recovery at the
// start of every reservation after the first. This example compares
// checkpoint strategies on the whole campaign — reservations consumed,
// utilization of the paid-for allocation, and work lost — and then
// contrasts the two Section 4.4 after-checkpoint policies under a
// pay-per-use cost model.
//
//	go run ./examples/multi_reservation
package main

import (
	"fmt"

	"reskit"
)

func main() {
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(5, 0.4)
	const r = 29

	dyn := reskit.NewDynamic(r, task, ckpt)
	static := reskit.NewStatic(r, reskit.Normal(3, 0.5), ckpt)
	nOpt := static.Optimize().NOpt

	strategies := []struct {
		name string
		s    reskit.Strategy
	}{
		{"dynamic", reskit.DynamicStrategy(dyn)},
		{fmt.Sprintf("static(n=%d)", nOpt), reskit.StaticStrategy(nOpt)},
		{"pessimistic", reskit.PessimisticStrategy(task.Quantile(0.9999), ckpt.Quantile(0.9999))},
	}

	fmt.Printf("campaign: 500 s of work, R=%d s, recovery 1.5 s, %v tasks, %v checkpoints\n\n", r, task, ckpt)
	fmt.Printf("%-14s %14s %12s %10s %9s\n", "strategy", "reservations", "utilization", "lost work", "stalls")
	const trials = 300
	for _, st := range strategies {
		var sumRes, sumUtil, sumLost, sumStall float64
		for i := 0; i < trials; i++ {
			res := reskit.RunCampaign(reskit.CampaignConfig{
				Reservation: reskit.SimConfig{
					R: r, Recovery: 1.5, Task: task, Ckpt: ckpt, Strategy: st.s,
				},
				TotalWork: 500,
			}, reskit.NewRNGStream(11, uint64(i)))
			sumRes += float64(res.Reservations)
			sumUtil += res.Utilization()
			sumLost += res.LostWork
			sumStall += float64(res.StalledRounds)
		}
		fmt.Printf("%-14s %14.2f %11.1f%% %10.1f %9.2f\n", st.name,
			sumRes/trials, 100*sumUtil/trials, sumLost/trials, sumStall/trials)
	}

	// Section 4.4: after a successful checkpoint, drop the reservation
	// (pay-per-use) or keep computing (pay-per-reservation)? The dynamic
	// rule checkpoints at the last safe moment and leaves no leftover, so
	// the contrast shows with an early-committing static policy: commit
	// every 5 tasks and either stop at the first checkpoint or keep
	// batching until the reservation ends.
	fmt.Printf("\nafter-checkpoint policies (single reservation, R=60 s, checkpoint every 5 tasks):\n")
	task2 := reskit.TruncatedNormal(3, 0.5)
	ckpt2 := reskit.TruncatedNormal(2, 0.3)
	for _, pol := range []struct {
		name  string
		after reskit.AfterPolicy
	}{
		{"drop after checkpoint (pay per use)", reskit.DropReservation},
		{"continue to the end (pay per reservation)", reskit.ContinueExecution},
	} {
		agg := reskit.MonteCarlo(reskit.SimConfig{
			R: 60, Task: task2, Ckpt: ckpt2,
			Strategy: reskit.StaticStrategy(5), After: pol.after,
		}, 20000, 3, 0)
		fmt.Printf("  %-42s saved %6.2f s, machine time %6.2f s, efficiency %.3f work/s-used\n",
			pol.name, agg.Saved.Mean(), agg.TimeUsed.Mean(),
			agg.Saved.Mean()/agg.TimeUsed.Mean())
	}
	fmt.Println("\nContinuing commits more work from the same reservation; dropping buys more")
	fmt.Println("work per second actually billed — exactly the §4.4 trade-off.")
}
