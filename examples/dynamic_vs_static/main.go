// Dynamic vs static: when does adaptivity pay?
//
// Section 4.3 argues the static strategy suits task laws with small
// standard deviation, while the dynamic strategy wins when durations are
// volatile. This example sweeps the task coefficient of variation at a
// fixed mean and measures both strategies (plus the oracle upper bound)
// by simulation on the paper's Figure 8 instance.
//
//	go run ./examples/dynamic_vs_static
package main

import (
	"fmt"

	"reskit"
)

func main() {
	const (
		r        = 29.0
		taskMean = 3.0
		trials   = 40000
	)
	ckpt := reskit.TruncatedNormal(5, 0.4)

	fmt.Printf("R=%g, task mean %g, checkpoints ~ %v, %d trials per cell\n\n", r, taskMean, ckpt, trials)
	fmt.Printf("%6s %8s %9s %9s %9s %12s\n", "CV", "n_opt", "static", "dynamic", "oracle", "dyn gain")

	for _, cv := range []float64{0.05, 0.1, 0.2, 0.4, 0.7, 1.0} {
		// Gamma law with the requested mean and coefficient of
		// variation: k = 1/cv^2, theta = mean*cv^2.
		k := 1 / (cv * cv)
		theta := taskMean * cv * cv
		task := reskit.Gamma(k, theta)

		static := reskit.NewStatic(r, task, ckpt)
		sol := static.Optimize()
		dyn := reskit.NewDynamic(r, task, ckpt)

		base := reskit.SimConfig{R: r, Task: task, Ckpt: ckpt}
		mk := func(s reskit.Strategy) reskit.SimConfig { c := base; c.Strategy = s; return c }

		statM := reskit.MonteCarlo(mk(reskit.StaticStrategy(sol.NOpt)), trials, 5, 0).Saved.Mean()
		dynM := reskit.MonteCarlo(mk(reskit.DynamicStrategy(dyn)), trials, 5, 0).Saved.Mean()
		oracle := reskit.MonteCarloOracle(mk(reskit.NeverStrategy()), trials, 5, 0).Saved.Mean()

		gain := 0.0
		if statM > 0 {
			gain = 100 * (dynM/statM - 1)
		}
		fmt.Printf("%6.2f %8d %9.3f %9.3f %9.3f %+11.2f%%\n",
			cv, sol.NOpt, statM, dynM, oracle, gain)
	}

	fmt.Println("\nAt low variability the fixed n_opt is already near-optimal; as task")
	fmt.Println("durations grow volatile, reacting to the realized durations (dynamic)")
	fmt.Println("recovers a growing share of the oracle's advantage — the paper's point.")
}
