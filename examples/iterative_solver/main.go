// Iterative solver under reservations: the paper's motivating workload,
// end to end.
//
// A Conjugate Gradient solver works on a 2500-unknown sparse Poisson
// system. The machine grants fixed 30-second reservations; each solver
// iteration takes a stochastic amount of time (Gamma-distributed); at
// the end of each iteration the application may snapshot the solver
// state (x, r, p), which itself takes a stochastic time. Progress
// survives a reservation only if a snapshot completes before the
// reservation ends; the next reservation restores the last snapshot
// (paying a recovery cost) and continues.
//
// The example runs the full campaign twice — once with the paper's
// dynamic strategy, once with the pessimistic worst-case-budgeting
// baseline — and compares reservations used and work lost.
//
//	go run ./examples/iterative_solver
package main

import (
	"fmt"

	"reskit"
	"reskit/internal/solver"
	"reskit/internal/sparse"
)

// reservationLength is the length R of each reservation, in seconds.
const reservationLength = 30

// recoveryTime is the time to restore a snapshot at reservation start.
const recoveryTime = 1.0

// campaign runs the solver to convergence across reservations, deciding
// checkpoints with the given strategy. It returns the reservations used,
// the iterations executed (including re-executed ones) and the
// iterations that were lost to failed checkpoints.
func campaign(strategyName string, decide reskit.Strategy, r *reskit.RNG) (reservations, executed, lost int) {
	// The application: CG on a 50x50 Poisson grid.
	a := sparse.Poisson2D(50)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	cg := solver.NewCG(a, b)
	const tol = 1e-9

	// Duration models: an iteration takes ~2 s (Gamma with some spread);
	// a snapshot takes ~3 s.
	iterLaw := reskit.Gamma(4, 0.5)
	ckptLaw := reskit.TruncatedNormal(3, 0.3)

	var snapshot solver.Snapshot
	haveSnapshot := false

	for cg.Residual() > tol {
		reservations++
		elapsed := 0.0
		if haveSnapshot {
			cg.Restore(snapshot)
			elapsed += recoveryTime
		} else if reservations > 1 {
			// No snapshot yet: restart from scratch.
			cg = solver.NewCG(a, b)
		}
		work := 0.0
		tasksSince := 0
		sinceCkptStart := cg.Iteration()

		for {
			st := reskit.StrategyState{
				R: reservationLength, Elapsed: elapsed, Work: work, TasksDone: tasksSince,
			}
			act := decide.Decide(st)
			if act == reskit.ActionContinue && cg.Residual() <= tol {
				// Converged mid-reservation: still need to save!
				act = reskit.ActionCheckpoint
			}
			switch act {
			case reskit.ActionContinue:
				dt := iterLaw.Sample(r)
				if elapsed+dt > reservationLength {
					// Reservation ends mid-iteration; everything since
					// the last snapshot is lost.
					lost += cg.Iteration() - sinceCkptStart
					goto nextReservation
				}
				cg.Step()
				executed++
				elapsed += dt
				work += dt
				tasksSince++
			case reskit.ActionCheckpoint:
				dc := ckptLaw.Sample(r)
				if elapsed+dc > reservationLength {
					lost += cg.Iteration() - sinceCkptStart
					goto nextReservation
				}
				snapshot = cg.Snapshot()
				haveSnapshot = true
				goto nextReservation
			case reskit.ActionStop:
				goto nextReservation
			}
		}
	nextReservation:
		if reservations > 10000 {
			panic("campaign runaway")
		}
	}
	return reservations, executed, lost
}

func main() {
	iterLaw := reskit.Gamma(4, 0.5)
	ckptLaw := reskit.TruncatedNormal(3, 0.3)

	// The paper's dynamic rule for this instance.
	dyn := reskit.NewDynamic(reservationLength, iterLaw, ckptLaw)
	wInt, err := dyn.Intersection()
	if err != nil {
		panic(err)
	}
	fmt.Printf("dynamic rule: checkpoint once accumulated work >= %.2f s (R = %d s)\n\n",
		wInt, reservationLength)

	strategies := []struct {
		name string
		s    reskit.Strategy
	}{
		{"dynamic (paper §4.3)", reskit.DynamicStrategy(dyn)},
		{"pessimistic baseline", reskit.PessimisticStrategy(
			iterLaw.Quantile(0.9999), ckptLaw.Quantile(0.9999))},
	}
	fmt.Printf("%-22s %13s %10s %6s\n", "strategy", "reservations", "iterations", "lost")
	for _, st := range strategies {
		// Average over several campaign replays.
		var sumRes, sumExec, sumLost int
		const replays = 20
		for rep := 0; rep < replays; rep++ {
			r := reskit.NewRNGStream(7, uint64(rep))
			res, exec, lost := campaign(st.name, st.s, r)
			sumRes += res
			sumExec += exec
			sumLost += lost
		}
		fmt.Printf("%-22s %13.1f %10.1f %6.1f\n", st.name,
			float64(sumRes)/replays, float64(sumExec)/replays, float64(sumLost)/replays)
	}
	fmt.Println("\n(lost = solver iterations wiped because no snapshot completed in time)")
}
