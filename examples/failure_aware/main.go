// Failure-aware checkpointing: the paper's Section 5 future work.
//
// The paper deliberately studies failure-free platforms, where the only
// "failure" is the deterministic reservation end; its related work
// contrasts that with the classical regime of random fail-stop errors
// mitigated by periodic Young/Daly checkpointing. This example puts both
// regimes side by side: a 100-second reservation with cheap checkpoints,
// swept across failure rates from none to harsh, comparing the paper's
// end-only dynamic rule against Young/Daly periodic commits.
//
//	go run ./examples/failure_aware
package main

import (
	"fmt"
	"math"

	"reskit"
)

func main() {
	const r = 100.0
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(2, 0.3)
	dyn := reskit.NewDynamic(r, task, ckpt)

	fmt.Printf("R = %g s, tasks ~ %v, checkpoints ~ %v\n", r, task, ckpt)
	fmt.Printf("%10s %12s %14s %14s %9s\n",
		"MTBF", "Y/D period", "dynamic (§4.3)", "Young/Daly", "winner")

	const trials = 20000
	for _, mtbf := range []float64{0, 400, 100, 50, 25, 12} {
		failRate := 0.0
		period := "-"
		var ydStrategy reskit.Strategy
		if mtbf > 0 {
			failRate = 1 / mtbf
			yd := reskit.YoungDalyStrategy(mtbf, ckpt.Mean())
			ydStrategy = yd
			period = fmt.Sprintf("%.1f s", periodOf(mtbf, ckpt.Mean()))
		} else {
			// Failure-free: Young/Daly degenerates; use a generous period.
			ydStrategy = reskit.PeriodicStrategy(30)
			period = "30 s"
		}

		mk := func(s reskit.Strategy) reskit.SimConfig {
			return reskit.SimConfig{
				R: r, Task: task, Ckpt: ckpt, Strategy: s,
				After: reskit.ContinueExecution, Recovery: 0.5,
				FailureRate: failRate,
			}
		}
		dynSaved := reskit.MonteCarlo(mk(reskit.DynamicStrategy(dyn)), trials, 1, 0).Saved.Mean()
		ydSaved := reskit.MonteCarlo(mk(ydStrategy), trials, 1, 0).Saved.Mean()
		winner := "dynamic"
		if ydSaved > dynSaved {
			winner = "Young/Daly"
		}
		mtbfLabel := "inf"
		if mtbf > 0 {
			mtbfLabel = fmt.Sprintf("%.0f s", mtbf)
		}
		fmt.Printf("%10s %12s %14.2f %14.2f %9s\n", mtbfLabel, period, dynSaved, ydSaved, winner)
	}

	fmt.Println("\nFailure-free, the paper's end-only rule maximizes saved work; as errors")
	fmt.Println("become frequent, periodic commits take over — quantifying the boundary")
	fmt.Println("between the paper's regime and the classical Young/Daly regime.")
}

// periodOf mirrors the Young/Daly first-order period.
func periodOf(mtbf, meanCkpt float64) float64 {
	return math.Sqrt(2 * mtbf * meanCkpt)
}
