// Quickstart: the Section 3 problem end to end.
//
// An application has a 60-second reservation. Saving its state takes a
// stochastic amount of time: around 5 s, never less than 3 s, never more
// than 7 s. When should it start the final checkpoint?
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"reskit"
)

func main() {
	// The checkpoint-duration law D_C: a Normal(5, 0.4^2) truncated to
	// [3, 7] — the construction of Section 3.1 of the paper.
	law := reskit.Truncate(reskit.Normal(5, 0.4), 3, 7)

	// The reservation: R = 60 seconds.
	prob := reskit.NewPreemptible(60, law)

	// The optimal instant: start the checkpoint X_opt seconds before the
	// end of the reservation.
	sol := prob.OptimalX()
	fmt.Printf("checkpoint law:         %v\n", law)
	fmt.Printf("optimal lead time:      %.3f s before the end (method: %s)\n", sol.X, sol.Method)
	fmt.Printf("expected saved work:    %.3f s of computation\n", sol.ExpectedWork)

	// Compare with the pessimistic, risk-free plan: always budget the
	// worst case C_max = 7 s.
	pess := prob.Pessimistic()
	fmt.Printf("pessimistic plan:       checkpoint %.3f s early, saving %.3f s\n", pess.X, pess.ExpectedWork)
	fmt.Printf("gain:                   %.2f%% more expected work than the pessimistic plan\n",
		100*(prob.Gain()-1))

	// Validate the analytical expectation by simulation: 100k
	// reservations, each sampling a fresh checkpoint duration.
	agg := reskit.MonteCarloPreemptible(prob, sol.X, 100000, 42, 0)
	fmt.Printf("simulation check:       %.3f ± %.3f (analytic %.3f), %.1f%% of checkpoints completed\n",
		agg.Work.Mean(), agg.Work.CI95(), sol.ExpectedWork, 100*agg.SuccessRate())
}
