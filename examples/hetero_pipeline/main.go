// Heterogeneous pipeline: the general instance of Section 4.1.
//
// The paper's conclusion notes the dynamic strategy "would be easy to
// extend … to the general instance" where every task T_i has its own
// duration law D_X^(i) and checkpoint law D_C^(i). This example models a
// video-analysis pipeline of the kind the related-work section cites —
// decode, denoise, detect, track, encode — whose stages differ both in
// run time and in checkpoint footprint, and walks the generalized rule
// through one reservation, then evaluates it against fixed policies by
// simulation.
//
//	go run ./examples/hetero_pipeline
package main

import (
	"fmt"

	"reskit"
)

const r = 30.0 // reservation length, seconds

// stages returns the pipeline: per-stage duration and checkpoint laws.
// The detector is slow with a big model state (expensive checkpoint);
// the encoder writes mostly streamed output (cheap checkpoint).
func stages() ([]reskit.TaskSpec, []string) {
	names := []string{"decode", "denoise", "detect", "track", "encode"}
	specs := []reskit.TaskSpec{
		{Duration: reskit.TruncatedNormal(3, 0.4), Ckpt: reskit.TruncatedNormal(2, 0.3)},
		{Duration: reskit.TruncatedNormal(5, 0.8), Ckpt: reskit.TruncatedNormal(2.5, 0.3)},
		{Duration: reskit.Gamma(9, 1.0), Ckpt: reskit.TruncatedNormal(6, 0.8)}, // ~9 s task, 6 s ckpt
		{Duration: reskit.TruncatedNormal(4, 0.6), Ckpt: reskit.TruncatedNormal(3, 0.4)},
		{Duration: reskit.TruncatedNormal(6, 0.9), Ckpt: reskit.TruncatedNormal(1, 0.2)},
	}
	return specs, names
}

func main() {
	specs, names := stages()
	h := reskit.NewHeterogeneous(r, specs)

	// The static heuristic (moment-matched partial sums).
	n, v := reskit.StaticHeteroHeuristic(h)
	fmt.Printf("pipeline of %d stages in an R = %g s reservation\n", h.Len(), r)
	fmt.Printf("static heuristic: run %d stage(s) then checkpoint (approx E = %.2f s)\n\n", n, v)

	// Walk the dynamic rule along the mean trajectory.
	fmt.Println("dynamic rule along the mean trajectory:")
	elapsed, work := 0.0, 0.0
	for i, spec := range specs {
		elapsed += spec.Duration.Mean()
		work += spec.Duration.Mean()
		ck, err := h.ShouldCheckpoint(i, work, elapsed)
		if err != nil {
			panic(err)
		}
		verdict := "continue"
		if ck {
			verdict = "CHECKPOINT"
		}
		fmt.Printf("  after %-8s elapsed %5.1f s, work %5.1f s -> %s\n",
			names[i], elapsed, work, verdict)
		if ck {
			break
		}
	}

	// Monte-Carlo: generalized dynamic rule vs checkpoint-after-stage-k
	// for every fixed k.
	fmt.Println("\nexpected saved work by simulation (20000 runs):")
	const trials = 20000
	for k := 1; k <= len(specs); k++ {
		fmt.Printf("  checkpoint after stage %d (%s): %7.3f s\n",
			k, names[k-1], simulateFixed(specs, k, trials))
	}
	fmt.Printf("  generalized dynamic rule:        %7.3f s\n", simulateDynamic(h, specs, trials))
}

// simulateFixed always checkpoints right after stage k (1-based).
func simulateFixed(specs []reskit.TaskSpec, k, trials int) float64 {
	var sum float64
	for t := 0; t < trials; t++ {
		src := reskit.NewRNGStream(99, uint64(t))
		elapsed, work := 0.0, 0.0
		ok := true
		for i := 0; i < k; i++ {
			x := specs[i].Duration.Sample(src)
			if elapsed+x > r {
				ok = false
				break
			}
			elapsed += x
			work += x
		}
		if !ok {
			continue
		}
		if elapsed+specs[k-1].Ckpt.Sample(src) <= r {
			sum += work
		}
	}
	return sum / float64(trials)
}

// simulateDynamic applies the generalized rule at every stage boundary.
func simulateDynamic(h *reskit.Heterogeneous, specs []reskit.TaskSpec, trials int) float64 {
	var sum float64
	for t := 0; t < trials; t++ {
		src := reskit.NewRNGStream(99, uint64(t))
		elapsed, work := 0.0, 0.0
		for i := range specs {
			x := specs[i].Duration.Sample(src)
			if elapsed+x > r {
				break // stage cut off; nothing saved
			}
			elapsed += x
			work += x
			ck, err := h.ShouldCheckpoint(i, work, elapsed)
			if err != nil {
				panic(err)
			}
			if ck || i == len(specs)-1 {
				if elapsed+specs[i].Ckpt.Sample(src) <= r {
					sum += work
				}
				break
			}
		}
	}
	return sum / float64(trials)
}
