// Package examples_test smoke-tests every example program: each must
// build, run to completion with exit status 0, and print something.
// This keeps the examples honest as the API evolves — a signature change
// that breaks an example now fails `go test ./examples` instead of being
// discovered by a reader.
package examples_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("no example directories found")
	}
	return dirs
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full Monte-Carlo experiments; skipped in -short mode")
	}
	for _, dir := range exampleDirs(t) {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.ToSlash(dir))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s printed nothing", dir)
			}
		})
	}
}
