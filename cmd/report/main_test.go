package main

import (
	"strings"
	"testing"
)

func TestReportAllFiguresPass(t *testing.T) {
	var buf strings.Builder
	failures, err := write(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("%d figures failed:\n%s", failures, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"# Reproduction report",
		"## fig1a", "## fig5", "## fig10",
		"| X_opt | 5.5 | 5.5 |",
		"**Status: PASS**",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("unexpected FAIL in report")
	}
	if strings.Count(out, "## ") != 14 {
		t.Errorf("expected 14 figure sections, got %d", strings.Count(out, "## "))
	}
}

func TestReportExtendedSections(t *testing.T) {
	var buf strings.Builder
	failures, err := write(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures: %d", failures)
	}
	out := buf.String()
	for _, want := range []string{"## ext1", "## ext4", "| loss@0 | — |"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
