// Command advise serves the paper's checkpoint-policy decisions as an
// online API. Every answer ckptopt can compute — Scenario-1 optimal X*,
// static n_opt, the dynamic "checkpoint now?" decision — is a pure
// function of (mode, R, law specs), so the server builds each policy
// table once, content-addresses it by fingerprint, and answers every
// further query for that table from an immutable in-process cache
// (optionally persisted with -store, so a restart never rebuilds).
//
// Serve:
//
//	advise -listen 127.0.0.1:8426 -store /var/lib/reskit/advisor
//
// then query:
//
//	curl -d '{"mode":"dynamic","r":29,"task":"norm:3,0.5@[0,inf]",
//	          "ckpt":"norm:5,0.4@[0,inf]","work":12}' \
//	     http://127.0.0.1:8426/v1/advise
//
// Endpoints: POST /v1/advise, POST /v1/advise/batch, GET /healthz, and
// GET /metrics (Prometheus text exposition of the advisor's counters).
//
// One-shot mode answers a single query on stdout and exits — the same
// code path the server runs, for scripts and diffing against ckptopt:
//
//	advise -q '{"mode":"preempt","r":10,"ckpt":"exp:0.5@[1,5]"}'
//
// Exit codes: 0 served/answered, 1 error, 3 interrupted by a second
// signal before the drain finished.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reskit/internal/advisor"
	"reskit/internal/httpd"
	"reskit/internal/obs"
)

// exitInterrupted mirrors cmd/simulate's convention for runs cut short
// by signals.
const exitInterrupted = 3

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "advise:", err)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("advise", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8426", "address to serve the advisor API on")
	store := fs.String("store", "", "directory for persisted policy tables (empty: in-memory only)")
	oneShot := fs.String("q", "", "answer this one JSON query on stdout and exit (no server)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown deadline after a signal")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}

	reg := obs.NewRegistry()
	adv := advisor.New(advisor.Options{Dir: *store, Reg: reg})

	if *oneShot != "" {
		return oneShotQuery(out, adv, *oneShot)
	}
	return serve(out, adv, reg, *listen, *drain)
}

// oneShotQuery runs one query through the exact code path the HTTP
// handler uses and prints the answer.
func oneShotQuery(out io.Writer, adv *advisor.Advisor, body string) (int, error) {
	q, err := advisor.DecodeQuery([]byte(body))
	if err != nil {
		return 1, err
	}
	ans, err := adv.Advise(context.Background(), q)
	if err != nil {
		return 1, err
	}
	enc := json.NewEncoder(out)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(ans); err != nil {
		return 1, err
	}
	return 0, nil
}

// serve runs the API until a signal arrives, then drains within the
// deadline. A second signal during the drain exits immediately with the
// interrupted code.
func serve(out io.Writer, adv *advisor.Advisor, reg *obs.Registry, addr string, drain time.Duration) (int, error) {
	mux := http.NewServeMux()
	mux.Handle("/", adv.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteProm(w, "reskit") //nolint:errcheck // client gone; nothing to do
	})

	srv, err := httpd.Listen(addr, mux)
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(out, "advisor: http://%s/v1/advise (batch under /v1/advise/batch, Prometheus under /metrics)\n", srv.Addr())

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case <-sigc:
		done := make(chan error, 1)
		go func() { done <- srv.Shutdown(drain) }()
		select {
		case err := <-done:
			if err != nil {
				return 1, err
			}
			return 0, nil
		case <-sigc:
			return exitInterrupted, errors.New("interrupted during drain")
		}
	case err := <-srv.Err():
		// The listener died under us (port stolen, fd limit, ...).
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return 1, err
		}
		return 0, nil
	}
}
