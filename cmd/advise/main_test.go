package main

import (
	"bytes"
	"context"
	"encoding/json"

	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"reskit/internal/advisor"
	"reskit/internal/ckpt"
)

// syncBuffer lets the test read the announcement line while the serve
// goroutine may still be writing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestOneShotAnswersLikeTheLibrary runs -q end to end and diffs every
// field against the advisor library (the same comparison the ckptopt
// bit-identity tests make inside internal/advisor).
func TestOneShotAnswersLikeTheLibrary(t *testing.T) {
	const query = `{"mode":"preempt","r":10,"ckpt":"exp:0.5@[1,5]"}`
	var buf bytes.Buffer
	code, err := run([]string{"-q", query}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("run: code %d, err %v", code, err)
	}
	var got advisor.Answer
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("one-shot output is not an Answer: %v\n%s", err, buf.String())
	}
	q, err := advisor.DecodeQuery([]byte(query))
	if err != nil {
		t.Fatal(err)
	}
	want, err := advisor.New(advisor.Options{}).Advise(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("one-shot answer differs from library:\n%+v\n%+v", got, want)
	}
	if uint64(got.Fingerprint) != ckpt.Fingerprint(advisor.FingerprintParts(q)...) {
		t.Error("served fingerprint is not the canonical content address")
	}
}

func TestOneShotRejectsBadQuery(t *testing.T) {
	var buf bytes.Buffer
	if code, err := run([]string{"-q", `{"mode":"nope"}`}, &buf); code != 1 || err == nil {
		t.Fatalf("bad query: code %d, err %v", code, err)
	}
}

// TestServeEndToEnd starts the server on an ephemeral port, exercises
// /v1/advise, /v1/advise/batch, /healthz and /metrics, checks the warm
// 1k-query batch latency budget, and shuts down via the signal path.
func TestServeEndToEnd(t *testing.T) {
	var buf syncBuffer
	done := make(chan struct{})
	var code int
	var runErr error
	go func() {
		defer close(done)
		code, runErr = run([]string{"-listen", "127.0.0.1:0", "-store", t.TempDir()}, &buf)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output %q", buf.String())
		}
		out := buf.String()
		if i := strings.Index(out, "advisor: http://"); i >= 0 {
			rest := out[i+len("advisor: http://"):]
			if j := strings.Index(rest, "/v1/advise"); j >= 0 {
				base = "http://" + rest[:j]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	const query = `{"mode":"dynamic","r":10,"task":"exp:0.3","ckpt":"uniform:0.3,0.7","work":2.5}`
	resp, err := http.Post(base+"/v1/advise", "application/json", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	var ans advisor.Answer
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ans.Mode != "dynamic" {
		t.Fatalf("advise: status %d, answer %+v", resp.StatusCode, ans)
	}

	// Warm 1k-query batch: the table above is cached, so the entire
	// round trip — encode, 1000 lookups, decode — fits the budget.
	var batch advisor.BatchRequest
	for i := 0; i < 1000; i++ {
		q, err := advisor.DecodeQuery([]byte(query))
		if err != nil {
			t.Fatal(err)
		}
		q.Work = float64(i) / 100
		batch.Queries = append(batch.Queries, q)
	}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err = http.Post(base+"/v1/advise/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br advisor.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed := time.Since(start)
	if len(br.Answers) != 1000 {
		t.Fatalf("batch returned %d answers", len(br.Answers))
	}
	for i, a := range br.Answers {
		if a.Error != "" {
			t.Fatalf("batch answer %d errored: %s", i, a.Error)
		}
	}
	if elapsed > 50*time.Millisecond {
		t.Errorf("warm 1k-query batch took %v, budget 50ms", elapsed)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE reskit_advisor_queries counter",
		"reskit_advisor_cache_hits",
		"# TYPE reskit_advisor_build_ns summary",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("/metrics missing %q in:\n%s", want, prom.String())
		}
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	// Shut down through the signal path and require a clean exit.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if code != 0 || runErr != nil {
		t.Fatalf("serve exit: code %d, err %v", code, runErr)
	}
}

func TestListenFailureIsAnError(t *testing.T) {
	var buf bytes.Buffer
	if code, err := run([]string{"-listen", "256.256.256.256:99999"}, &buf); code != 1 || err == nil {
		t.Fatalf("bad listen address: code %d, err %v", code, err)
	}
}

func TestFlagParseError(t *testing.T) {
	if code, _ := run([]string{"-definitely-not-a-flag"}, &bytes.Buffer{}); code != 1 {
		t.Fatalf("code %d", code)
	}
}
