package main

import (
	"bytes"
	"context"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"reskit"
	"reskit/internal/httpd"
)

// currentReg holds the registry of the active invocation. expvar
// registration is global and irrevocable, so the published Func reads
// through this pointer instead of capturing a registry — run() can be
// invoked repeatedly (tests do) without tripping expvar's duplicate
// panic, and each invocation's metrics show up live.
var (
	currentReg  atomic.Pointer[reskit.ObsRegistry]
	publishOnce sync.Once
)

// simObs bundles the CLI's observability wiring: the instrument
// registry, the simulator observer attached to every SimConfig, the
// optional JSONL trace sink, the live progress reporter, the debug HTTP
// endpoint, and the metrics file written on exit.
type simObs struct {
	reg      *reskit.ObsRegistry
	observer *reskit.SimObserver
	progress *reskit.Progress
	trace    interface {
		Flush() error
		Close() error
	}
	metricsPath string
	srv         *httpd.Server
}

// setupObs builds the observability layer from the CLI flags; it
// returns nil when every observability flag is off, so the simulation
// configs keep a nil Obs and the hot path stays uninstrumented.
// progressTotal <= 0 renders progress without percentage/ETA (the
// workflow mode runs one Monte-Carlo per strategy, so no single total
// exists).
func setupObs(out io.Writer, progress bool, metricsPath, listenAddr, tracePath string,
	traceEvery int64, savedMax float64, progressTotal int64) (*simObs, error) {

	if !progress && metricsPath == "" && listenAddr == "" && tracePath == "" {
		return nil, nil
	}
	o := &simObs{
		reg:         reskit.NewObsRegistry(),
		metricsPath: metricsPath,
	}
	o.observer = reskit.NewSimObserver(o.reg, savedMax)
	reskit.ObserveQuadrature(o.reg)
	reskit.ObserveOptimize(o.reg)

	if tracePath != "" {
		// The sink streams into an atomic temp file; its Close (in finish)
		// commits the rename, so a crash mid-run never leaves a truncated
		// trace at the destination path.
		f, err := reskit.CreateFileAtomic(tracePath)
		if err != nil {
			return nil, fmt.Errorf("-trace: %w", err)
		}
		sink := reskit.NewJSONLTraceSink(f)
		o.trace = sink
		o.observer.Trace = sink
		o.observer.TraceEvery = traceEvery
	}
	if progress {
		o.progress = reskit.NewProgress(os.Stderr, "trials", progressTotal, time.Second)
		o.observer.Progress = o.progress
		o.progress.Start(context.Background())
	}
	if listenAddr != "" {
		if err := o.listen(out, listenAddr); err != nil {
			o.shutdown()
			return nil, err
		}
	}
	currentReg.Store(o.reg)
	return o, nil
}

// listen starts the debug HTTP endpoint: expvar under /debug/vars
// (including the live "reskit" metrics snapshot), a Prometheus text
// exposition of the same registry under /metrics, and the pprof
// handlers under /debug/pprof/. The server comes from internal/httpd,
// so header-read and idle timeouts bound every connection (a slow
// client used to hold one forever). The actual bound address is
// printed, so ":0" yields a usable URL (and a testable one).
func (o *simObs) listen(out io.Writer, addr string) error {
	publishOnce.Do(func() {
		expvar.Publish("reskit", expvar.Func(func() interface{} {
			if r := currentReg.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", promHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv, err := httpd.Listen(addr, mux)
	if err != nil {
		return fmt.Errorf("-listen: %w", err)
	}
	o.srv = srv
	fmt.Fprintf(out, "observability: http://%s/debug/vars (pprof under /debug/pprof/, Prometheus under /metrics)\n", srv.Addr())
	return nil
}

// promHandler serves the live registry in Prometheus text exposition
// format. Like the expvar Func it reads through currentReg, so repeated
// run() invocations (tests) each expose their own registry.
func promHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg := currentReg.Load(); reg != nil {
			reg.WriteProm(w, "reskit") //nolint:errcheck // client gone; nothing to do
		}
	})
}

// attach installs the observer on a reservation config. Safe on a nil
// *simObs, so call sites need no guards.
func (o *simObs) attach(cfg *reskit.SimConfig) {
	if o != nil {
		cfg.Obs = o.observer
	}
}

// instrumentCkpt binds the checkpoint writer's snapshot/commit gauges on
// the registry, so -metrics and /debug/vars show durable-run progress.
// Safe on a nil *simObs.
func (o *simObs) instrumentCkpt(w *reskit.RunCheckpointer) {
	if o != nil {
		w.Instrument(o.reg)
	}
}

// counted wraps a strategy so every continue/checkpoint/stop decision
// is tallied on the registry. Decisions are unchanged, so simulation
// results stay bit-identical. Safe on a nil *simObs.
func (o *simObs) counted(s reskit.Strategy) reskit.Strategy {
	if o == nil {
		return s
	}
	return reskit.CountedStrategy(s, o.reg)
}

// snapshot returns the current metrics snapshot, or nil when
// observability is off — shaped for embedding into the benchjson file.
func (o *simObs) snapshot() *reskit.ObsSnapshot {
	if o == nil {
		return nil
	}
	s := o.reg.Snapshot()
	return &s
}

// shutdown stops the endpoint, the progress reporter, and flushes the
// trace sink; it is idempotent enough for the error path of setupObs.
func (o *simObs) shutdown() {
	o.progress.Stop()
	if o.srv != nil {
		o.srv.Shutdown(2 * time.Second) //nolint:errcheck // best-effort teardown
		o.srv = nil
	}
}

// finish tears the layer down and writes the metrics file. Safe on nil;
// returns the first error that matters to the user (an unwritable
// metrics file or a trace that failed to flush).
func (o *simObs) finish() error {
	if o == nil {
		return nil
	}
	o.shutdown()
	var first error
	if o.trace != nil {
		if err := o.trace.Close(); err != nil {
			first = fmt.Errorf("trace: %w", err)
		}
	}
	if o.metricsPath != "" {
		var buf bytes.Buffer
		err := o.reg.WriteJSON(&buf)
		if err == nil {
			err = reskit.WriteFileAtomic(o.metricsPath, buf.Bytes(), 0o644)
		}
		if err != nil && first == nil {
			first = fmt.Errorf("-metrics: %w", err)
		}
	}
	return first
}
