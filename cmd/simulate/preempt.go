package main

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"reskit"
	"reskit/internal/engine"
	"reskit/internal/rng"
	"reskit/internal/sim"
)

// runPreempt validates the analytical E(W(X)) of the preemptible
// scenario against simulation: the optimal lead time, the pessimistic
// bound, and the clairvoyant oracle. The three policies run as one
// engine job grid — block b of every policy on rng substream b — so the
// validation is resumable with -checkpoint/-resume and each row matches
// a standalone run of that policy to the bit.
func runPreempt(ctx context.Context, out io.Writer, r float64, ckpt reskit.Continuous,
	trials int, seed uint64, workers int, ckOpts ckptOpts, ob *simObs) error {

	p, err := reskit.TryNewPreemptible(r, ckpt)
	if err != nil {
		return err
	}
	sol := p.OptimalX()
	pess := p.Pessimistic()
	fmt.Fprintf(out, "preemptible: R=%g, C ~ %v, %d trials\n\n", r, ckpt, trials)

	policies := []struct {
		name   string
		x      float64
		want   float64
		oracle bool
	}{
		{"optimal", sol.X, sol.ExpectedWork, false},
		{"pessimistic", pess.X, pess.ExpectedWork, false},
		{"oracle", 0, r - ckpt.Mean(), true},
	}

	numBlocks := sim.NumMonteCarloBlocks(trials)
	jobs := make([]engine.Job, 0, len(policies)*numBlocks)
	for pi := range policies {
		for b := 0; b < numBlocks; b++ {
			pi, b := pi, b
			jobs = append(jobs, engine.Job{
				Name:   fmt.Sprintf("%s/block%d", policies[pi].name, b),
				Stream: uint64(b),
				Run: func(ctx context.Context, src *rng.Source) (engine.JobResult, error) {
					data, err := sim.PreemptibleBlockPayload(ctx, p, policies[pi].x, policies[pi].oracle, trials, b, src)
					return engine.JobResult{Payload: data}, err
				},
			})
		}
	}

	check := func(_ int, data []byte) error { return sim.CheckPreemptiblePayload(data) }
	res, runErr := engine.Run(ctx, ckOpts.spec(jobs, seed, workers, out, ob, check))
	if err := hardFailure(ctx, runErr, res); err != nil {
		return err
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "policy\tX\tanalytic E(W)\tsimulated E(W)\t±95%%\tsuccess\n")
	for pi, pol := range policies {
		agg, err := sim.MergePreemptiblePayloads(res.Payloads[pi*numBlocks : (pi+1)*numBlocks])
		if err != nil {
			return err
		}
		if int(agg.Trials) < trials {
			fmt.Fprintf(tw, "%s\t(%s after %d/%d trials)\n", pol.name, stopMarker(ctx), agg.Trials, trials)
			break
		}
		if pol.oracle {
			fmt.Fprintf(tw, "oracle\t-\t%.5g\t%.5g\t%.2g\t%.3f\n",
				pol.want, agg.Work.Mean(), agg.Work.CI95(), agg.SuccessRate())
		} else {
			fmt.Fprintf(tw, "%s\t%.4g\t%.5g\t%.5g\t%.2g\t%.3f\n",
				pol.name, pol.x, pol.want, agg.Work.Mean(), agg.Work.CI95(), agg.SuccessRate())
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return finishRun(ctx, out, runErr, res, ckOpts)
}
