package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reskit/internal/benchkit"
)

func TestWorkflowComparison(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "4000", "-seed", "1",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"oracle", "dynamic", "static", "pessimistic", "n_opt = 7", "W_int = 20.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWorkflowDiscrete(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "29", "-taskdisc", "poisson:3", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "4000", "-strategies", "static,dynamic",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n_opt = 6") {
		t.Errorf("Fig 7 n_opt missing:\n%s", buf.String())
	}
}

func TestPreemptValidation(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-preempt", "-R", "10", "-ckpt", "exp:0.5@[1,5]", "-trials", "20000",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"optimal", "pessimistic", "oracle", "success"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-R", "10"},
		{"-R", "10", "-ckpt", "norm:5,0.4@[0,inf]"},                                              // no task
		{"-R", "10", "-task", "bogus", "-ckpt", "norm:5,0.4@[0,inf]"},                            // bad law
		{"-R", "10", "-task", "gamma:1,1", "-ckpt", "norm:5,0.4@[0,inf]", "-strategies", "nope"}, // bad strategy
	}
	for i, args := range cases {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestWorkflowWithFailures(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "100", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:2,0.3@[0,inf]",
		"-trials", "2000", "-failrate", "0.04",
		"-strategies", "dynamic,youngdaly",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "youngdaly") {
		t.Errorf("missing youngdaly row:\n%s", buf.String())
	}
}

func TestYoungDalyRequiresFailrate(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "29", "-task", "gamma:1,1", "-ckpt", "norm:2,0.3@[0,inf]",
		"-trials", "500", "-strategies", "youngdaly",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "needs -failrate") {
		t.Errorf("missing failrate hint:\n%s", buf.String())
	}
}

func TestCampaignMode(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "100", "-trials", "64", "-workers", "2",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"mean reservations", "mean utilization", "all completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "all completed") && !strings.Contains(line, "true") {
			t.Errorf("campaign did not complete: %q", line)
		}
	}
}

func TestCampaignBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var buf strings.Builder
	err := run([]string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "100", "-trials", "64", "-benchjson", path,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := benchkit.Load(path)
	if err != nil {
		t.Fatalf("invalid snapshot: %v\n%s", err, data)
	}
	if snap.SchemaVersion != benchkit.SchemaVersion || snap.GoMaxProcs < 1 || snap.GoVersion == "" {
		t.Errorf("snapshot header incomplete:\n%s", data)
	}
	if len(snap.Results) != len(benchWorkerSweep) {
		t.Fatalf("got %d result rows, want %d (worker sweep %v):\n%s",
			len(snap.Results), len(benchWorkerSweep), benchWorkerSweep, data)
	}
	for i, row := range snap.Results {
		if row.Workers != benchWorkerSweep[i] {
			t.Errorf("row %d has workers %d, want %d", i, row.Workers, benchWorkerSweep[i])
		}
		if row.Reps != benchReps || row.NsPerTrial <= 0 {
			t.Errorf("row %d not min-of-%d timed: %+v", i, benchReps, row)
		}
		if i > 0 && row.SpeedupVs1Worker <= 0 {
			t.Errorf("row %d missing speedup_vs_1_worker: %+v", i, row)
		}
		if row.BitIdenticalAcrossWorkers == nil || !*row.BitIdenticalAcrossWorkers {
			t.Errorf("aggregates differ across the worker sweep:\n%s", data)
		}
		if row.Metrics["campaign.mean_utilization"] <= 0 {
			t.Errorf("row %d missing campaign.mean_utilization: %+v", i, row)
		}
	}
}

func TestCampaignErrors(t *testing.T) {
	cases := [][]string{
		{"-campaign", "-R", "29", "-ckpt", "norm:5,0.4@[0,inf]"}, // no task
		{"-campaign", "-R", "29", "-task", "gamma:1,1", "-ckpt", "norm:5,0.4@[0,inf]",
			"-totalwork", "-3"}, // bad total work
	}
	for i, args := range cases {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf strings.Builder
	err := run([]string{
		"-R", "29", "-task", "gamma:1,1", "-ckpt", "norm:2,0.3@[0,inf]",
		"-trials", "500", "-strategies", "static",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestWorkflowHistogram(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "29", "-task", "gamma:1,1", "-ckpt", "norm:2,0.3@[0,inf]",
		"-trials", "2000", "-strategies", "static", "-hist",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Errorf("histogram bars missing:\n%s", buf.String())
	}
}

func TestWorkflowFaultPlan(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "2000", "-strategies", "static,dynamic",
		"-faults", "ckptfail=0.2,revoke=uniform:0.1", "-mtbf", "50",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"faults:", "crash~exp(rate=0.02)", "ckptfail(p=0.2)", "revoke~uniform(p=0.1)",
		"E(ckptfaults)", "E(crashes)", "revoked"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWorkflowCkptFailShorthand(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "1000", "-strategies", "dynamic", "-ckptfail", "0.3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"faults: ckptfail(p=0.3)", "E(ckptfaults)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCampaignWithFaults(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "100", "-trials", "64", "-mtbf", "50",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"faults: crash~exp(rate=0.02)", "mean crashes", "mean ckpt faults",
		"mean revoked res", "completion rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFaultSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faults.json")
	var buf strings.Builder
	err := run([]string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "100", "-trials", "64",
		"-faultsweep", "50,200", "-benchjson", path,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MTBF", "E(lost)", "completion"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Benchmark string `json:"benchmark"`
		Sweep     []struct {
			MTBF     float64 `json:"mtbf"`
			LostWork float64 `json:"mean_lost_work"`
		} `json:"sweep"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Benchmark != "CampaignFaultSweep" {
		t.Errorf("benchmark = %q, want CampaignFaultSweep", snap.Benchmark)
	}
	if len(snap.Sweep) != 2 {
		t.Fatalf("sweep has %d rows, want 2", len(snap.Sweep))
	}
	if snap.Sweep[0].MTBF != 50 || snap.Sweep[1].MTBF != 200 {
		t.Errorf("sweep MTBFs = %g, %g; want 50, 200", snap.Sweep[0].MTBF, snap.Sweep[1].MTBF)
	}
	if !(snap.Sweep[0].LostWork > snap.Sweep[1].LostWork) {
		t.Errorf("lost work not decreasing in MTBF: %g (MTBF 50) vs %g (MTBF 200)",
			snap.Sweep[0].LostWork, snap.Sweep[1].LostWork)
	}
}

func TestFaultFlagErrors(t *testing.T) {
	cases := [][]string{
		// -faultsweep without -campaign
		{"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
			"-faultsweep", "50,100"},
		// malformed fault spec
		{"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
			"-faults", "crash=bogus:1"},
		// out-of-range shorthand
		{"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
			"-ckptfail", "1.5"},
		// negative MTBF
		{"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
			"-recovery", "1.5", "-totalwork", "100", "-mtbf", "-4"},
		// bad sweep grid entry
		{"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
			"-recovery", "1.5", "-totalwork", "100", "-faultsweep", "50,zero"},
	}
	for i, args := range cases {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestWorkflowTimeout(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "50000000", "-strategies", "dynamic", "-timeout", "100ms",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stopped by -timeout") {
		t.Errorf("missing timeout marker:\n%s", buf.String())
	}
}
