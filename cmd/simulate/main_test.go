package main

import (
	"strings"
	"testing"
)

func TestWorkflowComparison(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "4000", "-seed", "1",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"oracle", "dynamic", "static", "pessimistic", "n_opt = 7", "W_int = 20.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWorkflowDiscrete(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "29", "-taskdisc", "poisson:3", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "4000", "-strategies", "static,dynamic",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n_opt = 6") {
		t.Errorf("Fig 7 n_opt missing:\n%s", buf.String())
	}
}

func TestPreemptValidation(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-preempt", "-R", "10", "-ckpt", "exp:0.5@[1,5]", "-trials", "20000",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"optimal", "pessimistic", "oracle", "success"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-R", "10"},
		{"-R", "10", "-ckpt", "norm:5,0.4@[0,inf]"},                                              // no task
		{"-R", "10", "-task", "bogus", "-ckpt", "norm:5,0.4@[0,inf]"},                            // bad law
		{"-R", "10", "-task", "gamma:1,1", "-ckpt", "norm:5,0.4@[0,inf]", "-strategies", "nope"}, // bad strategy
	}
	for i, args := range cases {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestWorkflowWithFailures(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "100", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:2,0.3@[0,inf]",
		"-trials", "2000", "-failrate", "0.04",
		"-strategies", "dynamic,youngdaly",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "youngdaly") {
		t.Errorf("missing youngdaly row:\n%s", buf.String())
	}
}

func TestYoungDalyRequiresFailrate(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "29", "-task", "gamma:1,1", "-ckpt", "norm:2,0.3@[0,inf]",
		"-trials", "500", "-strategies", "youngdaly",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "needs -failrate") {
		t.Errorf("missing failrate hint:\n%s", buf.String())
	}
}

func TestWorkflowHistogram(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-R", "29", "-task", "gamma:1,1", "-ckpt", "norm:2,0.3@[0,inf]",
		"-trials", "2000", "-strategies", "static", "-hist",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Errorf("histogram bars missing:\n%s", buf.String())
	}
}
