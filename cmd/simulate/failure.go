package main

import (
	"context"
	"errors"
	"fmt"
	"io"

	"reskit/internal/engine"
)

// exitDegraded is the exit code of a -keep-going run that completed but
// left permanently failed jobs behind: the printed aggregates are
// partial, and (with -checkpoint) the failed jobs stay resumable.
const exitDegraded = 4

// errDegraded marks a keep-going run that finished in degraded mode,
// distinguishing "partial results, failed jobs reported" from both plain
// failure (exit 1) and resumable interruption (exit 3).
var errDegraded = errors.New("completed degraded: some jobs failed permanently")

// hardFailure decides whether runErr aborts a mode before its results
// print. Interruptions and keep-going degradations fall through to the
// partial report (finishRun emits their status); a completed run whose
// only defect is a failed final snapshot write keeps its results too.
// Everything else — restore validation, a job out of retry budget — is a
// hard failure.
func hardFailure(ctx context.Context, runErr error, res *engine.Result) error {
	if runErr == nil || ctx.Err() != nil || len(res.Failed) > 0 {
		return nil
	}
	var serr *engine.SnapshotError
	if errors.As(runErr, &serr) && res.Done() == res.Total() {
		return nil
	}
	return runErr
}

// finishRun emits the post-run status block every mode shares — the
// snapshot-loss warning, the resume hint, the degraded-run job report —
// and converts a degraded keep-going run into errDegraded (exit code 4).
// A drained interruption whose final snapshot write failed gets the
// warning instead of the resumable claim: the state on disk is stale or
// gone, and pretending otherwise costs the user their recomputation.
func finishRun(ctx context.Context, out io.Writer, runErr error, res *engine.Result, ck ckptOpts) error {
	if runErr == nil {
		return nil
	}
	var serr *engine.SnapshotError
	snapLost := errors.As(runErr, &serr)
	if snapLost {
		fmt.Fprintf(out, "\nWARNING: run state is not durable: %v\n", serr.Err)
	}
	if ctx.Err() != nil && ck.path != "" {
		if snapLost {
			fmt.Fprintf(out, "interrupted: %d/%d jobs computed, but the snapshot at %s is stale or missing — resuming will recompute the lost work\n",
				res.Done(), res.Total(), ck.path)
		} else {
			fmt.Fprintf(out, "\ninterrupted: %d/%d jobs committed to %s; rerun with -resume to finish\n",
				res.Done(), res.Total(), ck.path)
		}
	}
	if len(res.Failed) > 0 && ctx.Err() == nil {
		fmt.Fprintf(out, "\ndegraded: %d job(s) failed permanently:\n", len(res.Failed))
		for _, je := range res.Failed {
			fmt.Fprintf(out, "  job %d (%s): %d attempt(s): %v\n", je.Job, je.Name, je.Attempts, je.Err)
		}
		if ck.path != "" && !snapLost {
			fmt.Fprintf(out, "rerun with -resume to retry only the failed jobs\n")
		}
		return errDegraded
	}
	return nil
}
