package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"reskit"
	"reskit/internal/benchkit"
)

// TestMalformedCkptExitsCleanly runs the real binary (the test executable
// re-executing main) with a malformed -ckpt law and checks that it exits
// with status 1 and a one-line error — no panic, no stack trace.
func TestMalformedCkptExitsCleanly(t *testing.T) {
	if os.Getenv("SIMULATE_REEXEC") == "1" {
		os.Args = []string{"simulate", "-R", "10", "-ckpt", "bogus:1,2"}
		main()
		t.Fatal("main returned instead of exiting") // unreachable on success
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestMalformedCkptExitsCleanly")
	cmd.Env = append(os.Environ(), "SIMULATE_REEXEC=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v (output %q)", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1 (output %q)", code, out)
	}
	if !bytes.Contains(out, []byte("simulate:")) {
		t.Errorf("stderr should carry the simulate: error prefix, got %q", out)
	}
	for _, forbidden := range []string{"panic:", "goroutine "} {
		if bytes.Contains(out, []byte(forbidden)) {
			t.Errorf("malformed input must not produce a stack trace, got %q", out)
		}
	}
}

// panicWriter simulates a programming bug in the output path.
type panicWriter struct{}

func (panicWriter) Write([]byte) (int, error) { panic("writer bug") }

// TestRunDoesNotSwallowPanics verifies the CLI no longer recovers
// arbitrary panics: a bug that panics must propagate to the caller.
func TestRunDoesNotSwallowPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed; run must let programming bugs crash")
		}
		if s := fmt.Sprint(r); !strings.Contains(s, "writer bug") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	_ = run([]string{
		"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "10", "-seed", "1",
	}, panicWriter{})
}

// TestMetricsSnapshotFile checks the -metrics JSON carries the trial,
// fault, integrand-eval and strategy-decision counters.
func TestMetricsSnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var buf bytes.Buffer
	err := run([]string{
		"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "400", "-seed", "7", "-mtbf", "40",
		"-strategies", "dynamic,static",
		"-metrics", path,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap reskit.ObsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	for _, name := range []string{
		"sim.trials", "sim.tasks", "sim.checkpoints", "sim.crashes",
		"quad.evals", "strategy.dynamic.continue", "strategy.dynamic.checkpoint",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0 (have %v)", name, snap.Counters[name], keys(snap.Counters))
		}
	}
	// Two strategies x 400 trials each.
	if got := snap.Counters["sim.trials"]; got != 800 {
		t.Errorf("sim.trials = %d, want 800", got)
	}
	q, ok := snap.Quantiles["sim.saved_work"]
	if !ok || q.Count != 800 {
		t.Errorf("sim.saved_work quantile sketch = %+v, want 800 samples", q)
	}
	if !(q.Min >= 0 && q.P50 >= q.Min && q.P90 >= q.P50 && q.P99 >= q.P90 && q.Max >= q.P99 && q.Max <= 29) {
		t.Errorf("sim.saved_work quantiles out of order or range: %+v", q)
	}
	// The fixed-layout histogram is legacy and only bound behind -hist.
	if h, ok := snap.Hists["sim.saved_work"]; ok {
		t.Errorf("sim.saved_work histogram bound without -hist: %+v", h)
	}
}

// TestMetricsHistFlagKeepsLegacyHistogram checks the deprecated fixed
// [0, R) histogram of saved work is still bound while -hist is given.
func TestMetricsHistFlagKeepsLegacyHistogram(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var buf bytes.Buffer
	err := run([]string{
		"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "400", "-seed", "7", "-strategies", "dynamic",
		"-hist", "-metrics", path,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap reskit.ObsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	// 400 Monte-Carlo trials plus the 400 reservations printHistogram
	// re-simulates for the ASCII chart, all with the observer attached.
	if h, ok := snap.Hists["sim.saved_work"]; !ok || h.Count != 800 {
		t.Errorf("sim.saved_work histogram = %+v, want 800 samples under -hist", h)
	}
	if q, ok := snap.Quantiles["sim.saved_work"]; !ok || q.Count != 800 {
		t.Errorf("sim.saved_work quantile sketch = %+v, want 800 samples alongside -hist", q)
	}
}

func keys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestMetricsDoNotPerturbResults runs the same workflow with and without
// the observability layer and requires byte-identical stdout.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	args := []string{
		"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "300", "-seed", "3", "-mtbf", "25", "-strategies", "dynamic,static,never",
	}
	var bare bytes.Buffer
	if err := run(args, &bare); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	var observed bytes.Buffer
	if err := run(append(append([]string{}, args...), "-metrics", path), &observed); err != nil {
		t.Fatal(err)
	}
	if bare.String() != observed.String() {
		t.Errorf("observability changed the results:\nbare:\n%s\nobserved:\n%s", bare.String(), observed.String())
	}
}

// TestCampaignBenchEmbedsMetrics checks the benchjson snapshot gains a
// metrics block when observability is on, and omits it when off.
func TestCampaignBenchEmbedsMetrics(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "bench.json")
	var buf bytes.Buffer
	err := run([]string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "120", "-trials", "60", "-seed", "2",
		"-benchjson", bench, "-metrics", filepath.Join(dir, "m.json"),
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := benchkit.Load(bench)
	if err != nil {
		t.Fatalf("invalid snapshot: %v\n%s", err, data)
	}
	if len(snap.Results) == 0 {
		t.Fatalf("no result rows:\n%s", data)
	}
	for _, row := range snap.Results {
		if row.Metrics == nil {
			t.Fatal("benchjson should carry registry metrics when -metrics is active")
		}
		if row.Metrics["sim.campaigns"] <= 0 {
			t.Errorf("sim.campaigns = %g, want > 0", row.Metrics["sim.campaigns"])
		}
		if _, ok := row.Metrics["engine.jobs_per_sec"]; !ok {
			t.Errorf("row %s missing engine.jobs_per_sec: %v", row.Key(), row.Metrics)
		}
		if _, ok := row.Metrics["engine.ns_per_job.p50"]; !ok {
			t.Errorf("row %s missing engine.ns_per_job.p50: %v", row.Key(), row.Metrics)
		}
	}
}

// TestTraceJSONL checks the -trace output: one JSON object per line,
// trial indices matching the deterministic sampling rule.
func TestTraceJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var buf bytes.Buffer
	err := run([]string{
		"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "200", "-seed", "5", "-strategies", "dynamic",
		"-trace", path, "-tracesample", "50",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var ev struct {
			Trial int64   `json:"trial"`
			Kind  string  `json:"kind"`
			T     float64 `json:"t"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v (%q)", lines, err, sc.Text())
		}
		if ev.Trial%50 != 0 || ev.Trial < 0 || ev.Trial >= 200 {
			t.Fatalf("trial %d outside the 1-in-50 sample of [0,200)", ev.Trial)
		}
		if ev.Kind == "" {
			t.Fatalf("line %d has no event kind", lines)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("trace file is empty")
	}
}

// TestListenServesDebugVars starts the debug endpoint on an ephemeral
// port and fetches /debug/vars and a pprof page through it.
func TestListenServesDebugVars(t *testing.T) {
	var buf bytes.Buffer
	ob, err := setupObs(&buf, false, "", "127.0.0.1:0", "", 1000, 29, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ob.finish()

	// The printed line carries the actual bound address.
	line := strings.TrimSpace(buf.String())
	const prefix = "observability: http://"
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected announcement %q", line)
	}
	addr := strings.Fields(strings.TrimPrefix(line, prefix))[0]
	addr = strings.TrimSuffix(addr, "/debug/vars")

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["reskit"]; !ok {
		t.Error("/debug/vars should publish the reskit metrics snapshot")
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: status %d", resp.StatusCode)
	}
}

// TestProgressFlagRuns exercises the -progress reporter end to end (the
// output goes to stderr; here we only require a clean run).
func TestProgressFlagRuns(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "120", "-trials", "40", "-seed", "2",
		"-progress",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean reservations") {
		t.Errorf("campaign output missing: %q", buf.String())
	}
}

// TestListenServesPromMetrics fetches /metrics from the debug endpoint
// and checks the Prometheus exposition contract: the scrape content
// type, and at least one TYPE-announced reskit_-prefixed sample.
func TestListenServesPromMetrics(t *testing.T) {
	var buf bytes.Buffer
	ob, err := setupObs(&buf, false, "", "127.0.0.1:0", "", 1000, 29, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ob.finish()
	ob.reg.Counter("sim.trials").Add(7)

	line := strings.TrimSpace(buf.String())
	addr := strings.Fields(strings.TrimPrefix(line, "observability: http://"))[0]
	addr = strings.TrimSuffix(addr, "/debug/vars")

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	out := string(body)
	for _, want := range []string{"# TYPE reskit_sim_trials counter", "reskit_sim_trials 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestListenServerIsHardened pins the Slowloris fix: the debug listener
// must come from internal/httpd, whose servers bound header reads.
func TestListenServerIsHardened(t *testing.T) {
	var buf bytes.Buffer
	ob, err := setupObs(&buf, false, "", "127.0.0.1:0", "", 1000, 29, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ob.finish()
	if ob.srv == nil {
		t.Fatal("listen did not record its server")
	}
}
