package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"reskit"
	"reskit/internal/benchkit"
	"reskit/internal/engine"
	"reskit/internal/lawspec"
	"reskit/internal/rng"
	"reskit/internal/sim"
)

// stopMarker names what cut a run short — the -timeout deadline, an
// interrupting signal, or (when the context is still live) jobs that
// failed permanently under -keep-going — for the partial-result rows.
func stopMarker(ctx context.Context) string {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return "stopped by -timeout"
	}
	if ctx.Err() == nil {
		return "degraded"
	}
	return "interrupted"
}

// ckptOpts carries the durable-run flags into the mode functions: where
// to snapshot, how often, whether to restore first, the configuration
// fingerprint guarding against resuming under a different setup, and
// the failure policy (retries, deadlines, keep-going). The policy is
// deliberately outside the fingerprint: retrying or resuming under a
// different policy is legal and still bit-identical.
type ckptOpts struct {
	path        string
	interval    time.Duration
	resume      bool
	fingerprint uint64
	failure     engine.Failure
}

// spec assembles the engine spec every mode shares: the job grid, the
// reproducibility contract, the durable-run layer from the CLI flags,
// and the observability wiring. Engine per-job progress stays nil here —
// the simulator observer already ticks per trial, and double-counting
// the same run would corrupt the ETA.
func (c ckptOpts) spec(jobs []engine.Job, seed uint64, workers int, out io.Writer, ob *simObs, check func(int, []byte) error) engine.Spec {
	sp := engine.Spec{
		Jobs:        jobs,
		Seed:        seed,
		Fingerprint: c.fingerprint,
		Workers:     workers,
		Checkpoint:  engine.Checkpoint{Path: c.path, Interval: c.interval, Resume: c.resume},
		Failure:     c.failure,
		Check:       check,
		Log:         out,
	}
	if ob != nil {
		sp.Reg = ob.reg
	}
	return sp
}

// campaignJobs lays out one campaign Monte-Carlo as its engine job grid:
// one job per block, block b on rng substream b, exactly the sharding of
// the in-process campaign runners — so merged payloads are bit-identical
// to an uninterrupted MonteCarloCampaign for any worker count.
func campaignJobs(cfg reskit.CampaignConfig, trials int) []engine.Job {
	jobs := make([]engine.Job, sim.NumCampaignBlocks(trials))
	for b := range jobs {
		b := b
		jobs[b] = engine.Job{
			Name:   fmt.Sprintf("block%d", b),
			Stream: uint64(b),
			Run: func(ctx context.Context, src *rng.Source) (engine.JobResult, error) {
				data, err := sim.CampaignBlockPayload(ctx, cfg, trials, b, src)
				return engine.JobResult{Payload: data}, err
			},
		}
	}
	return jobs
}

// checkCampaignPayload adapts the payload validator to the engine's
// restore hook.
func checkCampaignPayload(_ int, data []byte) error { return sim.CheckCampaignPayload(data) }

// campaignBase assembles the campaign configuration every campaign
// flavor (fixed grid, fault sweep, stream) shares: law parsing, the
// dynamic strategy built from the task/checkpoint laws, fault plan and
// observer wiring, validation. desc renders the laws for the banner.
func campaignBase(r, recovery, totalWork float64, taskSpec, taskDiscSpec string, ckpt reskit.Continuous,
	plan *reskit.FaultPlan, ob *simObs) (cfg reskit.CampaignConfig, desc string, err error) {

	if !(totalWork > 0) {
		return cfg, "", errors.New("-totalwork must be positive")
	}
	base := reskit.SimConfig{R: r, Recovery: recovery, Ckpt: ckpt, Faults: plan}
	ob.attach(&base)
	switch {
	case taskSpec != "":
		law, lerr := lawspec.Parse(taskSpec)
		if lerr != nil {
			return cfg, "", lerr
		}
		dyn, derr := reskit.TryNewDynamic(r, law, ckpt)
		if derr != nil {
			return cfg, "", derr
		}
		base.Task = law
		base.Strategy = ob.counted(reskit.DynamicStrategy(dyn))
		desc = fmt.Sprintf("X ~ %v, C ~ %v", law, ckpt)
	case taskDiscSpec != "":
		law, lerr := lawspec.ParseDiscrete(taskDiscSpec)
		if lerr != nil {
			return cfg, "", lerr
		}
		dyn, derr := reskit.TryNewDynamicDiscrete(r, law, ckpt)
		if derr != nil {
			return cfg, "", derr
		}
		base.TaskDisc = law
		base.Strategy = ob.counted(reskit.DynamicStrategy(dyn))
		desc = fmt.Sprintf("X ~ %v (discrete), C ~ %v", law, ckpt)
	default:
		return cfg, "", errors.New("-task or -taskdisc is required with -campaign")
	}
	cfg = reskit.CampaignConfig{Reservation: base, TotalWork: totalWork}
	if err := cfg.Validate(); err != nil {
		return cfg, "", err
	}
	return cfg, desc, nil
}

// runCampaignMode simulates the paper's multi-reservation campaign
// setting (Sections 1-2): the application needs -totalwork units of
// committed work and runs reservation after reservation under the
// dynamic checkpoint strategy, with recovery from the second reservation
// on. The campaign runs as a grid of engine jobs with a deterministic
// merge, so the printed aggregate is bit-identical for any worker count
// — including runs resumed from a -checkpoint snapshot.
func runCampaignMode(ctx context.Context, out io.Writer, r, recovery, totalWork float64, taskSpec, taskDiscSpec string,
	ckpt reskit.Continuous, trials int, seed uint64, workers int, benchJSON string,
	plan *reskit.FaultPlan, faultSweep string, ckOpts ckptOpts, ob *simObs) error {

	cfg, desc, err := campaignBase(r, recovery, totalWork, taskSpec, taskDiscSpec, ckpt, plan, ob)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "campaign: R=%g, %s, total work %g, %d trials\n\n", r, desc, totalWork, trials)

	if faultSweep != "" {
		return runFaultSweep(ctx, out, cfg, faultSweep, trials, seed, workers, benchJSON, ckOpts, ob)
	}
	if benchJSON != "" {
		return writeCampaignBench(ctx, out, cfg, trials, seed, benchJSON, ckOpts, ob)
	}

	if plan.Active() {
		fmt.Fprintf(out, "faults: %v\n\n", plan)
	}

	start := time.Now()
	res, runErr := engine.Run(ctx, ckOpts.spec(campaignJobs(cfg, trials), seed, workers, out, ob, checkCampaignPayload))
	elapsed := time.Since(start)
	// A restore error (malformed block payload) or a job out of retry
	// budget is a real failure, not an interruption: surface it instead
	// of printing partial numbers. Interrupted and keep-going-degraded
	// runs fall through to the partial report.
	if err := hardFailure(ctx, runErr, res); err != nil {
		return err
	}
	agg, err := sim.MergeCampaignPayloads(res.Payloads)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "mean reservations\t%.4g\n", agg.Reservations)
	fmt.Fprintf(tw, "mean utilization\t%.4g\n", agg.Utilization)
	fmt.Fprintf(tw, "mean lost work\t%.4g\n", agg.LostWork)
	if plan.Active() {
		fmt.Fprintf(tw, "mean ckpt faults\t%.4g\n", agg.CkptFaults)
		fmt.Fprintf(tw, "mean crashes\t%.4g\n", agg.Crashes)
		fmt.Fprintf(tw, "mean revoked res\t%.4g\n", agg.RevokedRes)
	}
	fmt.Fprintf(tw, "completion rate\t%.4g\n", agg.CompletionRate)
	fmt.Fprintf(tw, "all completed\t%v\n", agg.CompletedAll)
	fmt.Fprintf(tw, "wall time\t%v (%.0f trials/s)\n",
		elapsed.Round(time.Millisecond), float64(agg.Trials)/elapsed.Seconds())
	if runErr != nil && ckOpts.path == "" && ctx.Err() != nil {
		fmt.Fprintf(tw, "interrupted\t%s after %d/%d trials\n", stopMarker(ctx), agg.Trials, trials)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return finishRun(ctx, out, runErr, res, ckOpts)
}

// runFaultSweep reruns the campaign over a grid of MTBF values (keeping
// any other configured fault models fixed) and prints the trade-off the
// fault models create: more frequent crashes mean more lost work, lower
// utilization, and eventually campaigns that cannot finish within the
// reservation cap. The whole grid is one engine run — every (row, block)
// cell is a job — so -checkpoint/-resume spans the sweep and a resumed
// grid is bit-identical to an uninterrupted one.
func runFaultSweep(ctx context.Context, out io.Writer, cfg reskit.CampaignConfig, sweep string,
	trials int, seed uint64, workers int, benchJSON string, ckOpts ckptOpts, ob *simObs) error {

	// The per-row configs (base campaign with the crash model swapped)
	// come from the sweep layer shared with cmd/distrun, so a distributed
	// sweep computes the identical payload functions.
	mtbfs, cfgs, err := sim.FaultSweepConfigs(cfg, sweep)
	if err != nil {
		return fmt.Errorf("-faultsweep: %w", err)
	}

	numBlocks := sim.NumCampaignBlocks(trials)
	jobs := make([]engine.Job, 0, len(mtbfs)*numBlocks)
	for ri := range cfgs {
		for b := 0; b < numBlocks; b++ {
			ri, b := ri, b
			jobs = append(jobs, engine.Job{
				Name:   sim.FaultSweepJobName(mtbfs, numBlocks, ri*numBlocks+b),
				Stream: uint64(b),
				Run: func(ctx context.Context, src *rng.Source) (engine.JobResult, error) {
					data, err := sim.CampaignBlockPayload(ctx, cfgs[ri], trials, b, src)
					return engine.JobResult{Payload: data}, err
				},
			})
		}
	}

	res, runErr := engine.Run(ctx, ckOpts.spec(jobs, seed, workers, out, ob, checkCampaignPayload))
	if err := hardFailure(ctx, runErr, res); err != nil {
		return err
	}

	type sweepRow struct {
		MTBF           float64 `json:"mtbf"`
		LostWork       float64 `json:"mean_lost_work"`
		Utilization    float64 `json:"mean_utilization"`
		Reservations   float64 `json:"mean_reservations"`
		Crashes        float64 `json:"mean_crashes"`
		CompletionRate float64 `json:"completion_rate"`
	}
	rows := make([]sweepRow, 0, len(mtbfs))

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "MTBF\tE(lost)\tE(util)\tE(res)\tE(crashes)\tcompletion\n")
	for ri, m := range mtbfs {
		agg, err := sim.MergeCampaignPayloads(res.Payloads[ri*numBlocks : (ri+1)*numBlocks])
		if err != nil {
			return err
		}
		if int(agg.Trials) < trials {
			fmt.Fprintf(tw, "%g\t(%s after %d/%d trials)\n", m, stopMarker(ctx), agg.Trials, trials)
			break
		}
		rows = append(rows, sweepRow{
			MTBF:           m,
			LostWork:       agg.LostWork,
			Utilization:    agg.Utilization,
			Reservations:   agg.Reservations,
			Crashes:        agg.Crashes,
			CompletionRate: agg.CompletionRate,
		})
		fmt.Fprintf(tw, "%g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\n",
			m, agg.LostWork, agg.Utilization, agg.Reservations, agg.Crashes, agg.CompletionRate)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if ferr := finishRun(ctx, out, runErr, res, ckOpts); ferr != nil {
		return ferr
	}

	if benchJSON == "" || runErr != nil {
		return nil
	}
	snap := struct {
		benchkit.Header
		Benchmark   string     `json:"benchmark"`
		Trials      int        `json:"trials"`
		Reservation float64    `json:"reservation"`
		TotalWork   float64    `json:"total_work"`
		Sweep       []sweepRow `json:"sweep"`
	}{
		Header:      benchkit.NewHeader(),
		Benchmark:   "CampaignFaultSweep",
		Trials:      trials,
		Reservation: cfg.Reservation.R,
		TotalWork:   cfg.TotalWork,
		Sweep:       rows,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := reskit.WriteFileAtomic(benchJSON, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nfault-sweep snapshot -> %s\n", benchJSON)
	return nil
}

// benchWorkerSweep is the worker grid of a -benchjson run: serial
// baseline plus two oversubscription points, so the snapshot records
// the scaling curve of the machine it ran on (GOMAXPROCS is in the
// header for the reader to judge it by).
var benchWorkerSweep = []int{1, 4, 8}

// benchReps is the min-of-N repetition count of a -benchjson run.
const benchReps = 5

// engineMetrics flattens the observability registry into a snapshot
// row's metrics map: counters and gauges keep their names (the
// engine's "engine.jobs_per_sec" among them), quantile sketches expand
// to .p50/.p90/.p99 ("engine.ns_per_job.p50", ...). These are the very
// instruments -metrics reports, so the two outputs can never disagree
// about what a run measured. Returns nil when observability is off.
func engineMetrics(ob *simObs) map[string]float64 {
	snap := ob.snapshot()
	if snap == nil {
		return nil
	}
	m := make(map[string]float64, len(snap.Counters)+len(snap.Gauges)+3*len(snap.Quantiles))
	for name, v := range snap.Counters {
		m[name] = float64(v)
	}
	for name, v := range snap.Gauges {
		m[name] = v
	}
	for name, q := range snap.Quantiles {
		m[name+".p50"] = q.P50
		m[name+".p90"] = q.P90
		m[name+".p99"] = q.P99
	}
	return m
}

// writeCampaignBench times the campaign Monte-Carlo through the engine
// across the benchWorkerSweep worker grid, min-of-benchReps per cell,
// checks the merged aggregates are bit-identical across the sweep, and
// writes a benchkit schema-v2 snapshot to path. Timed runs bypass the
// -checkpoint layer: the benchmark measures simulation throughput, not
// snapshot IO.
func writeCampaignBench(ctx context.Context, out io.Writer, cfg reskit.CampaignConfig, trials int, seed uint64,
	path string, _ ckptOpts, ob *simObs) error {

	jobs := campaignJobs(cfg, trials)

	// Warm-up builds the dynamic strategy's coefficient table outside the
	// timed region so every cell measures pure simulation throughput.
	reskit.MonteCarloCampaign(cfg, 1, seed, 1)

	snap := benchkit.NewSnapshot()
	rows := make([]benchkit.Result, 0, len(benchWorkerSweep))
	aggs := make([]reskit.CampaignAggregate, 0, len(benchWorkerSweep))
	var ns1 float64
	for i, w := range benchWorkerSweep {
		var (
			res    *engine.Result
			runErr error
		)
		tm := benchkit.MinOf(benchReps, int64(trials), func() {
			if runErr != nil {
				return
			}
			res, runErr = engine.Run(ctx, ckptOpts{}.spec(jobs, seed, w, out, ob, nil))
		})
		if runErr != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(out, "benchmark interrupted; no snapshot written\n")
				return nil
			}
			return runErr
		}
		agg, err := sim.MergeCampaignPayloads(res.Payloads)
		if err != nil {
			return err
		}
		aggs = append(aggs, agg)

		row := tm.Result("campaign", w)
		if i == 0 {
			ns1 = tm.NsPerTrial
		} else if tm.NsPerTrial > 0 {
			row.SpeedupVs1Worker = ns1 / tm.NsPerTrial
		}
		row.Metrics = engineMetrics(ob)
		if row.Metrics == nil {
			row.Metrics = make(map[string]float64, 2)
		}
		row.Metrics["campaign.mean_reservations"] = agg.Reservations
		row.Metrics["campaign.mean_utilization"] = agg.Utilization
		rows = append(rows, row)
		fmt.Fprintf(out, "campaign w=%d: %.1f ns/trial (min of %d), %.0f trials/s\n",
			w, tm.NsPerTrial, tm.Reps, tm.TrialsPerSec)
	}

	identical := true
	for _, a := range aggs[1:] {
		if a != aggs[0] {
			identical = false
		}
	}
	for i := range rows {
		flag := identical
		rows[i].BitIdenticalAcrossWorkers = &flag
	}
	snap.Results = rows

	if err := snap.Write(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "bit-identical across workers %v -> %s\n", identical, path)
	return nil
}
