package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"reskit"
	"reskit/internal/lawspec"
)

// ckptOpts carries the durable-run flags into campaign mode: where to
// snapshot, how often, whether to restore first, and the configuration
// fingerprint guarding against resuming under a different setup.
type ckptOpts struct {
	path        string
	interval    time.Duration
	resume      bool
	fingerprint uint64
}

// runCampaignMode simulates the paper's multi-reservation campaign
// setting (Sections 1-2): the application needs -totalwork units of
// committed work and runs reservation after reservation under the
// dynamic checkpoint strategy, with recovery from the second reservation
// on. Trials are sharded across workers with a deterministic merge, so
// the printed aggregate is bit-identical for any worker count.
func runCampaignMode(ctx context.Context, out io.Writer, r, recovery, totalWork float64, taskSpec, taskDiscSpec string,
	ckpt reskit.Continuous, trials int, seed uint64, workers int, benchJSON string,
	plan *reskit.FaultPlan, faultSweep string, ckOpts ckptOpts, ob *simObs) error {

	if !(totalWork > 0) {
		return errors.New("-totalwork must be positive")
	}
	base := reskit.SimConfig{R: r, Recovery: recovery, Ckpt: ckpt, Faults: plan}
	ob.attach(&base)
	switch {
	case taskSpec != "":
		law, err := lawspec.Parse(taskSpec)
		if err != nil {
			return err
		}
		dyn, err := reskit.TryNewDynamic(r, law, ckpt)
		if err != nil {
			return err
		}
		base.Task = law
		base.Strategy = ob.counted(reskit.DynamicStrategy(dyn))
		fmt.Fprintf(out, "campaign: R=%g, X ~ %v, C ~ %v, total work %g, %d trials\n\n",
			r, law, ckpt, totalWork, trials)
	case taskDiscSpec != "":
		law, err := lawspec.ParseDiscrete(taskDiscSpec)
		if err != nil {
			return err
		}
		dyn, err := reskit.TryNewDynamicDiscrete(r, law, ckpt)
		if err != nil {
			return err
		}
		base.TaskDisc = law
		base.Strategy = ob.counted(reskit.DynamicStrategy(dyn))
		fmt.Fprintf(out, "campaign: R=%g, X ~ %v (discrete), C ~ %v, total work %g, %d trials\n\n",
			r, law, ckpt, totalWork, trials)
	default:
		return errors.New("-task or -taskdisc is required with -campaign")
	}
	cfg := reskit.CampaignConfig{Reservation: base, TotalWork: totalWork}
	if err := cfg.Validate(); err != nil {
		return err
	}

	if faultSweep != "" {
		return runFaultSweep(ctx, out, cfg, faultSweep, trials, seed, workers, benchJSON)
	}
	if benchJSON != "" {
		return writeCampaignBench(out, cfg, trials, seed, benchJSON, ob)
	}

	if plan.Active() {
		fmt.Fprintf(out, "faults: %v\n\n", plan)
	}

	// With -checkpoint, the run periodically snapshots its completed
	// blocks; on -resume, an existing snapshot is validated against the
	// current configuration and its blocks are restored instead of re-run.
	// Any snapshot problem falls back to a fresh run with a printed
	// warning — never a panic, never silently wrong numbers.
	var ck *reskit.RunCheckpointer
	if ckOpts.path != "" {
		st := reskit.NewRunState(reskit.RunStateCampaign, ckOpts.fingerprint, seed, int64(trials), reskit.CampaignBlockSize)
		if ckOpts.resume {
			loaded, lerr := reskit.LoadRunState(ckOpts.path)
			switch {
			case errors.Is(lerr, os.ErrNotExist):
				fmt.Fprintf(out, "resume: no snapshot at %s; starting fresh\n", ckOpts.path)
			case lerr != nil:
				fmt.Fprintf(out, "resume: snapshot unusable (%v); starting fresh\n", lerr)
			default:
				if cerr := loaded.Check(reskit.RunStateCampaign, ckOpts.fingerprint, seed, int64(trials), reskit.CampaignBlockSize); cerr != nil {
					fmt.Fprintf(out, "resume: snapshot does not match this run (%v); starting fresh\n", cerr)
				} else {
					st = loaded
					fmt.Fprintf(out, "resume: restoring %d/%d blocks from %s\n", st.Done(), st.NumBlocks, ckOpts.path)
				}
			}
		}
		ck = reskit.NewRunCheckpointer(ckOpts.path, ckOpts.interval, st)
		ob.instrumentCkpt(ck)
	}

	start := time.Now()
	var agg reskit.CampaignAggregate
	var mcErr error
	if ck != nil {
		agg, mcErr = reskit.MonteCarloCampaignCheckpointed(ctx, cfg, trials, seed, workers, ck)
	} else {
		agg, mcErr = reskit.MonteCarloCampaignContext(ctx, cfg, trials, seed, workers)
	}
	elapsed := time.Since(start)
	if ck != nil {
		// A restore error (malformed block payload) is a real failure, not
		// an interruption: surface it instead of printing partial numbers.
		if mcErr != nil && ctx.Err() == nil {
			return mcErr
		}
		if ferr := ck.Flush(); ferr != nil {
			return fmt.Errorf("checkpoint: writing final snapshot: %w", ferr)
		}
		if werr := ck.Err(); werr != nil {
			fmt.Fprintf(out, "checkpoint: snapshot writes failed during the run: %v\n", werr)
		}
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "mean reservations\t%.4g\n", agg.Reservations)
	fmt.Fprintf(tw, "mean utilization\t%.4g\n", agg.Utilization)
	fmt.Fprintf(tw, "mean lost work\t%.4g\n", agg.LostWork)
	if plan.Active() {
		fmt.Fprintf(tw, "mean ckpt faults\t%.4g\n", agg.CkptFaults)
		fmt.Fprintf(tw, "mean crashes\t%.4g\n", agg.Crashes)
		fmt.Fprintf(tw, "mean revoked res\t%.4g\n", agg.RevokedRes)
	}
	fmt.Fprintf(tw, "completion rate\t%.4g\n", agg.CompletionRate)
	fmt.Fprintf(tw, "all completed\t%v\n", agg.CompletedAll)
	fmt.Fprintf(tw, "wall time\t%v (%.0f trials/s)\n",
		elapsed.Round(time.Millisecond), float64(agg.Trials)/elapsed.Seconds())
	switch {
	case mcErr != nil && ck != nil:
		st := ck.State()
		fmt.Fprintf(tw, "interrupted\t%d/%d blocks committed to %s; rerun with -resume to finish\n",
			st.Done(), st.NumBlocks, ckOpts.path)
	case mcErr != nil:
		fmt.Fprintf(tw, "interrupted\t-timeout hit after %d/%d trials\n", agg.Trials, trials)
	case ck != nil:
		// The campaign completed: the snapshot has served its purpose, and
		// leaving it around would only invite a stale -resume later.
		if rerr := os.Remove(ckOpts.path); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			fmt.Fprintf(tw, "checkpoint\tcompleted but could not remove %s: %v\n", ckOpts.path, rerr)
		}
	}
	return tw.Flush()
}

// runFaultSweep reruns the campaign over a grid of MTBF values (keeping
// any other configured fault models fixed) and prints the trade-off the
// fault models create: more frequent crashes mean more lost work, lower
// utilization, and eventually campaigns that cannot finish within the
// reservation cap.
func runFaultSweep(ctx context.Context, out io.Writer, cfg reskit.CampaignConfig, sweep string,
	trials int, seed uint64, workers int, benchJSON string) error {

	var mtbfs []float64
	for _, f := range strings.Split(sweep, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("-faultsweep: bad MTBF %q: %w", f, err)
		}
		if !(v > 0) {
			return fmt.Errorf("-faultsweep: MTBF must be positive, got %g", v)
		}
		mtbfs = append(mtbfs, v)
	}

	type sweepRow struct {
		MTBF           float64 `json:"mtbf"`
		LostWork       float64 `json:"mean_lost_work"`
		Utilization    float64 `json:"mean_utilization"`
		Reservations   float64 `json:"mean_reservations"`
		Crashes        float64 `json:"mean_crashes"`
		CompletionRate float64 `json:"completion_rate"`
	}
	rows := make([]sweepRow, 0, len(mtbfs))

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "MTBF\tE(lost)\tE(util)\tE(res)\tE(crashes)\tcompletion\n")
	for _, m := range mtbfs {
		c := cfg
		p := &reskit.FaultPlan{}
		if cfg.Reservation.Faults != nil {
			*p = *cfg.Reservation.Faults
		}
		crash, err := reskit.CrashExponential(1 / m)
		if err != nil {
			return err
		}
		p.Crash = crash
		c.Reservation.Faults = p
		agg, mcErr := reskit.MonteCarloCampaignContext(ctx, c, trials, seed, workers)
		if mcErr != nil {
			fmt.Fprintf(tw, "%g\t(stopped by -timeout after %d/%d trials)\n", m, agg.Trials, trials)
			break
		}
		rows = append(rows, sweepRow{
			MTBF:           m,
			LostWork:       agg.LostWork,
			Utilization:    agg.Utilization,
			Reservations:   agg.Reservations,
			Crashes:        agg.Crashes,
			CompletionRate: agg.CompletionRate,
		})
		fmt.Fprintf(tw, "%g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\n",
			m, agg.LostWork, agg.Utilization, agg.Reservations, agg.Crashes, agg.CompletionRate)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if benchJSON == "" {
		return nil
	}
	snap := struct {
		Benchmark   string     `json:"benchmark"`
		Generated   string     `json:"generated"`
		Trials      int        `json:"trials"`
		Reservation float64    `json:"reservation"`
		TotalWork   float64    `json:"total_work"`
		Sweep       []sweepRow `json:"sweep"`
	}{
		Benchmark:   "CampaignFaultSweep",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Trials:      trials,
		Reservation: cfg.Reservation.R,
		TotalWork:   cfg.TotalWork,
		Sweep:       rows,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := reskit.WriteFileAtomic(benchJSON, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nfault-sweep snapshot -> %s\n", benchJSON)
	return nil
}

// campaignBench is the BENCH_campaign.json schema: one snapshot of the
// campaign Monte-Carlo throughput, serial vs parallel, that future perf
// PRs are compared against.
type campaignBench struct {
	Benchmark        string  `json:"benchmark"`
	Generated        string  `json:"generated"`
	GoMaxProcs       int     `json:"gomaxprocs"`
	Workers          int     `json:"workers"`
	Trials           int     `json:"trials"`
	Reservation      float64 `json:"reservation"`
	TotalWork        float64 `json:"total_work"`
	SerialSec        float64 `json:"serial_sec"`
	ParallelSec      float64 `json:"parallel_sec"`
	Speedup          float64 `json:"speedup"`
	NsPerTrial       float64 `json:"ns_per_trial_parallel"`
	MeanReservations float64 `json:"mean_reservations"`
	MeanUtilization  float64 `json:"mean_utilization"`
	BitIdentical     bool    `json:"bit_identical_across_workers"`

	// Metrics embeds the observability snapshot (trial, fault,
	// integrand-eval and strategy-decision counters) when any
	// observability flag was active during the benchmark run.
	Metrics *reskit.ObsSnapshot `json:"metrics,omitempty"`
}

// writeCampaignBench times the campaign Monte-Carlo with one worker and
// with all CPUs, checks the aggregates are bit-identical, and writes the
// snapshot to path.
func writeCampaignBench(out io.Writer, cfg reskit.CampaignConfig, trials int, seed uint64, path string, ob *simObs) error {
	workers := reskit.Workers()

	// Warm-up builds the dynamic strategy's coefficient table outside the
	// timed region so both runs measure pure simulation throughput.
	reskit.MonteCarloCampaign(cfg, 1, seed, 1)

	start := time.Now()
	serial := reskit.MonteCarloCampaign(cfg, trials, seed, 1)
	serialSec := time.Since(start).Seconds()

	start = time.Now()
	parallel := reskit.MonteCarloCampaign(cfg, trials, seed, workers)
	parallelSec := time.Since(start).Seconds()

	snap := campaignBench{
		Benchmark:        "MonteCarloCampaign",
		Generated:        time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Workers:          workers,
		Trials:           trials,
		Reservation:      cfg.Reservation.R,
		TotalWork:        cfg.TotalWork,
		SerialSec:        serialSec,
		ParallelSec:      parallelSec,
		Speedup:          serialSec / parallelSec,
		NsPerTrial:       parallelSec * 1e9 / float64(trials),
		MeanReservations: parallel.Reservations,
		MeanUtilization:  parallel.Utilization,
		BitIdentical:     serial == parallel,
		Metrics:          ob.snapshot(),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := reskit.WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "serial %.3fs, parallel %.3fs on %d workers (%.2fx), bit-identical %v -> %s\n",
		serialSec, parallelSec, workers, snap.Speedup, snap.BitIdentical, path)
	return nil
}
