package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"reskit"
	"reskit/internal/lawspec"
)

// runCampaignMode simulates the paper's multi-reservation campaign
// setting (Sections 1-2): the application needs -totalwork units of
// committed work and runs reservation after reservation under the
// dynamic checkpoint strategy, with recovery from the second reservation
// on. Trials are sharded across workers with a deterministic merge, so
// the printed aggregate is bit-identical for any worker count.
func runCampaignMode(out io.Writer, r, recovery, totalWork float64, taskSpec, taskDiscSpec string,
	ckpt reskit.Continuous, trials int, seed uint64, workers int, benchJSON string) error {

	if !(totalWork > 0) {
		return errors.New("-totalwork must be positive")
	}
	base := reskit.SimConfig{R: r, Recovery: recovery, Ckpt: ckpt}
	switch {
	case taskSpec != "":
		law, err := lawspec.Parse(taskSpec)
		if err != nil {
			return err
		}
		base.Task = law
		base.Strategy = reskit.DynamicStrategy(reskit.NewDynamic(r, law, ckpt))
		fmt.Fprintf(out, "campaign: R=%g, X ~ %v, C ~ %v, total work %g, %d trials\n\n",
			r, law, ckpt, totalWork, trials)
	case taskDiscSpec != "":
		law, err := lawspec.ParseDiscrete(taskDiscSpec)
		if err != nil {
			return err
		}
		base.TaskDisc = law
		base.Strategy = reskit.DynamicStrategy(reskit.NewDynamicDiscrete(r, law, ckpt))
		fmt.Fprintf(out, "campaign: R=%g, X ~ %v (discrete), C ~ %v, total work %g, %d trials\n\n",
			r, law, ckpt, totalWork, trials)
	default:
		return errors.New("-task or -taskdisc is required with -campaign")
	}
	cfg := reskit.CampaignConfig{Reservation: base, TotalWork: totalWork}

	if benchJSON != "" {
		return writeCampaignBench(out, cfg, trials, seed, benchJSON)
	}

	start := time.Now()
	agg := reskit.MonteCarloCampaign(cfg, trials, seed, workers)
	elapsed := time.Since(start)

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "mean reservations\t%.4g\n", agg.Reservations)
	fmt.Fprintf(tw, "mean utilization\t%.4g\n", agg.Utilization)
	fmt.Fprintf(tw, "mean lost work\t%.4g\n", agg.LostWork)
	fmt.Fprintf(tw, "all completed\t%v\n", agg.CompletedAll)
	fmt.Fprintf(tw, "wall time\t%v (%.0f trials/s)\n",
		elapsed.Round(time.Millisecond), float64(trials)/elapsed.Seconds())
	return tw.Flush()
}

// campaignBench is the BENCH_campaign.json schema: one snapshot of the
// campaign Monte-Carlo throughput, serial vs parallel, that future perf
// PRs are compared against.
type campaignBench struct {
	Benchmark        string  `json:"benchmark"`
	Generated        string  `json:"generated"`
	GoMaxProcs       int     `json:"gomaxprocs"`
	Workers          int     `json:"workers"`
	Trials           int     `json:"trials"`
	Reservation      float64 `json:"reservation"`
	TotalWork        float64 `json:"total_work"`
	SerialSec        float64 `json:"serial_sec"`
	ParallelSec      float64 `json:"parallel_sec"`
	Speedup          float64 `json:"speedup"`
	NsPerTrial       float64 `json:"ns_per_trial_parallel"`
	MeanReservations float64 `json:"mean_reservations"`
	MeanUtilization  float64 `json:"mean_utilization"`
	BitIdentical     bool    `json:"bit_identical_across_workers"`
}

// writeCampaignBench times the campaign Monte-Carlo with one worker and
// with all CPUs, checks the aggregates are bit-identical, and writes the
// snapshot to path.
func writeCampaignBench(out io.Writer, cfg reskit.CampaignConfig, trials int, seed uint64, path string) error {
	workers := reskit.Workers()

	// Warm-up builds the dynamic strategy's coefficient table outside the
	// timed region so both runs measure pure simulation throughput.
	reskit.MonteCarloCampaign(cfg, 1, seed, 1)

	start := time.Now()
	serial := reskit.MonteCarloCampaign(cfg, trials, seed, 1)
	serialSec := time.Since(start).Seconds()

	start = time.Now()
	parallel := reskit.MonteCarloCampaign(cfg, trials, seed, workers)
	parallelSec := time.Since(start).Seconds()

	snap := campaignBench{
		Benchmark:        "MonteCarloCampaign",
		Generated:        time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Workers:          workers,
		Trials:           trials,
		Reservation:      cfg.Reservation.R,
		TotalWork:        cfg.TotalWork,
		SerialSec:        serialSec,
		ParallelSec:      parallelSec,
		Speedup:          serialSec / parallelSec,
		NsPerTrial:       parallelSec * 1e9 / float64(trials),
		MeanReservations: parallel.Reservations,
		MeanUtilization:  parallel.Utilization,
		BitIdentical:     serial == parallel,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "serial %.3fs, parallel %.3fs on %d workers (%.2fx), bit-identical %v -> %s\n",
		serialSec, parallelSec, workers, snap.Speedup, snap.BitIdentical, path)
	return nil
}
