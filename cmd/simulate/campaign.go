package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"reskit"
	"reskit/internal/lawspec"
)

// runCampaignMode simulates the paper's multi-reservation campaign
// setting (Sections 1-2): the application needs -totalwork units of
// committed work and runs reservation after reservation under the
// dynamic checkpoint strategy, with recovery from the second reservation
// on. Trials are sharded across workers with a deterministic merge, so
// the printed aggregate is bit-identical for any worker count.
func runCampaignMode(ctx context.Context, out io.Writer, r, recovery, totalWork float64, taskSpec, taskDiscSpec string,
	ckpt reskit.Continuous, trials int, seed uint64, workers int, benchJSON string,
	plan *reskit.FaultPlan, faultSweep string, ob *simObs) error {

	if !(totalWork > 0) {
		return errors.New("-totalwork must be positive")
	}
	base := reskit.SimConfig{R: r, Recovery: recovery, Ckpt: ckpt, Faults: plan}
	ob.attach(&base)
	switch {
	case taskSpec != "":
		law, err := lawspec.Parse(taskSpec)
		if err != nil {
			return err
		}
		dyn, err := reskit.TryNewDynamic(r, law, ckpt)
		if err != nil {
			return err
		}
		base.Task = law
		base.Strategy = ob.counted(reskit.DynamicStrategy(dyn))
		fmt.Fprintf(out, "campaign: R=%g, X ~ %v, C ~ %v, total work %g, %d trials\n\n",
			r, law, ckpt, totalWork, trials)
	case taskDiscSpec != "":
		law, err := lawspec.ParseDiscrete(taskDiscSpec)
		if err != nil {
			return err
		}
		dyn, err := reskit.TryNewDynamicDiscrete(r, law, ckpt)
		if err != nil {
			return err
		}
		base.TaskDisc = law
		base.Strategy = ob.counted(reskit.DynamicStrategy(dyn))
		fmt.Fprintf(out, "campaign: R=%g, X ~ %v (discrete), C ~ %v, total work %g, %d trials\n\n",
			r, law, ckpt, totalWork, trials)
	default:
		return errors.New("-task or -taskdisc is required with -campaign")
	}
	cfg := reskit.CampaignConfig{Reservation: base, TotalWork: totalWork}
	if err := cfg.Validate(); err != nil {
		return err
	}

	if faultSweep != "" {
		return runFaultSweep(ctx, out, cfg, faultSweep, trials, seed, workers, benchJSON)
	}
	if benchJSON != "" {
		return writeCampaignBench(out, cfg, trials, seed, benchJSON, ob)
	}

	if plan.Active() {
		fmt.Fprintf(out, "faults: %v\n\n", plan)
	}
	start := time.Now()
	agg, mcErr := reskit.MonteCarloCampaignContext(ctx, cfg, trials, seed, workers)
	elapsed := time.Since(start)

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "mean reservations\t%.4g\n", agg.Reservations)
	fmt.Fprintf(tw, "mean utilization\t%.4g\n", agg.Utilization)
	fmt.Fprintf(tw, "mean lost work\t%.4g\n", agg.LostWork)
	if plan.Active() {
		fmt.Fprintf(tw, "mean ckpt faults\t%.4g\n", agg.CkptFaults)
		fmt.Fprintf(tw, "mean crashes\t%.4g\n", agg.Crashes)
		fmt.Fprintf(tw, "mean revoked res\t%.4g\n", agg.RevokedRes)
	}
	fmt.Fprintf(tw, "completion rate\t%.4g\n", agg.CompletionRate)
	fmt.Fprintf(tw, "all completed\t%v\n", agg.CompletedAll)
	fmt.Fprintf(tw, "wall time\t%v (%.0f trials/s)\n",
		elapsed.Round(time.Millisecond), float64(agg.Trials)/elapsed.Seconds())
	if mcErr != nil {
		fmt.Fprintf(tw, "interrupted\t-timeout hit after %d/%d trials\n", agg.Trials, trials)
	}
	return tw.Flush()
}

// runFaultSweep reruns the campaign over a grid of MTBF values (keeping
// any other configured fault models fixed) and prints the trade-off the
// fault models create: more frequent crashes mean more lost work, lower
// utilization, and eventually campaigns that cannot finish within the
// reservation cap.
func runFaultSweep(ctx context.Context, out io.Writer, cfg reskit.CampaignConfig, sweep string,
	trials int, seed uint64, workers int, benchJSON string) error {

	var mtbfs []float64
	for _, f := range strings.Split(sweep, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("-faultsweep: bad MTBF %q: %w", f, err)
		}
		if !(v > 0) {
			return fmt.Errorf("-faultsweep: MTBF must be positive, got %g", v)
		}
		mtbfs = append(mtbfs, v)
	}

	type sweepRow struct {
		MTBF           float64 `json:"mtbf"`
		LostWork       float64 `json:"mean_lost_work"`
		Utilization    float64 `json:"mean_utilization"`
		Reservations   float64 `json:"mean_reservations"`
		Crashes        float64 `json:"mean_crashes"`
		CompletionRate float64 `json:"completion_rate"`
	}
	rows := make([]sweepRow, 0, len(mtbfs))

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "MTBF\tE(lost)\tE(util)\tE(res)\tE(crashes)\tcompletion\n")
	for _, m := range mtbfs {
		c := cfg
		p := &reskit.FaultPlan{}
		if cfg.Reservation.Faults != nil {
			*p = *cfg.Reservation.Faults
		}
		crash, err := reskit.CrashExponential(1 / m)
		if err != nil {
			return err
		}
		p.Crash = crash
		c.Reservation.Faults = p
		agg, mcErr := reskit.MonteCarloCampaignContext(ctx, c, trials, seed, workers)
		if mcErr != nil {
			fmt.Fprintf(tw, "%g\t(stopped by -timeout after %d/%d trials)\n", m, agg.Trials, trials)
			break
		}
		rows = append(rows, sweepRow{
			MTBF:           m,
			LostWork:       agg.LostWork,
			Utilization:    agg.Utilization,
			Reservations:   agg.Reservations,
			Crashes:        agg.Crashes,
			CompletionRate: agg.CompletionRate,
		})
		fmt.Fprintf(tw, "%g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\n",
			m, agg.LostWork, agg.Utilization, agg.Reservations, agg.Crashes, agg.CompletionRate)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if benchJSON == "" {
		return nil
	}
	snap := struct {
		Benchmark   string     `json:"benchmark"`
		Generated   string     `json:"generated"`
		Trials      int        `json:"trials"`
		Reservation float64    `json:"reservation"`
		TotalWork   float64    `json:"total_work"`
		Sweep       []sweepRow `json:"sweep"`
	}{
		Benchmark:   "CampaignFaultSweep",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Trials:      trials,
		Reservation: cfg.Reservation.R,
		TotalWork:   cfg.TotalWork,
		Sweep:       rows,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchJSON, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nfault-sweep snapshot -> %s\n", benchJSON)
	return nil
}

// campaignBench is the BENCH_campaign.json schema: one snapshot of the
// campaign Monte-Carlo throughput, serial vs parallel, that future perf
// PRs are compared against.
type campaignBench struct {
	Benchmark        string  `json:"benchmark"`
	Generated        string  `json:"generated"`
	GoMaxProcs       int     `json:"gomaxprocs"`
	Workers          int     `json:"workers"`
	Trials           int     `json:"trials"`
	Reservation      float64 `json:"reservation"`
	TotalWork        float64 `json:"total_work"`
	SerialSec        float64 `json:"serial_sec"`
	ParallelSec      float64 `json:"parallel_sec"`
	Speedup          float64 `json:"speedup"`
	NsPerTrial       float64 `json:"ns_per_trial_parallel"`
	MeanReservations float64 `json:"mean_reservations"`
	MeanUtilization  float64 `json:"mean_utilization"`
	BitIdentical     bool    `json:"bit_identical_across_workers"`

	// Metrics embeds the observability snapshot (trial, fault,
	// integrand-eval and strategy-decision counters) when any
	// observability flag was active during the benchmark run.
	Metrics *reskit.ObsSnapshot `json:"metrics,omitempty"`
}

// writeCampaignBench times the campaign Monte-Carlo with one worker and
// with all CPUs, checks the aggregates are bit-identical, and writes the
// snapshot to path.
func writeCampaignBench(out io.Writer, cfg reskit.CampaignConfig, trials int, seed uint64, path string, ob *simObs) error {
	workers := reskit.Workers()

	// Warm-up builds the dynamic strategy's coefficient table outside the
	// timed region so both runs measure pure simulation throughput.
	reskit.MonteCarloCampaign(cfg, 1, seed, 1)

	start := time.Now()
	serial := reskit.MonteCarloCampaign(cfg, trials, seed, 1)
	serialSec := time.Since(start).Seconds()

	start = time.Now()
	parallel := reskit.MonteCarloCampaign(cfg, trials, seed, workers)
	parallelSec := time.Since(start).Seconds()

	snap := campaignBench{
		Benchmark:        "MonteCarloCampaign",
		Generated:        time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Workers:          workers,
		Trials:           trials,
		Reservation:      cfg.Reservation.R,
		TotalWork:        cfg.TotalWork,
		SerialSec:        serialSec,
		ParallelSec:      parallelSec,
		Speedup:          serialSec / parallelSec,
		NsPerTrial:       parallelSec * 1e9 / float64(trials),
		MeanReservations: parallel.Reservations,
		MeanUtilization:  parallel.Utilization,
		BitIdentical:     serial == parallel,
		Metrics:          ob.snapshot(),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "serial %.3fs, parallel %.3fs on %d workers (%.2fx), bit-identical %v -> %s\n",
		serialSec, parallelSec, workers, snap.Speedup, snap.BitIdentical, path)
	return nil
}
