package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"reskit"
)

// streamArgs is the fixed streaming campaign of the CLI tests: a
// stopping rule loose enough to fire quickly once the MinN guard lifts.
func streamArgs(extra ...string) []string {
	args := []string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "150", "-seed", "9",
		"-until-ci", "rel=0.02",
	}
	return append(args, extra...)
}

// restoredNote matches the ", N restored" annotation a resumed run adds
// to its trials line — the only legitimate output difference against an
// uninterrupted reference.
var restoredNote = regexp.MustCompile(`, \d+ restored`)

// streamResultLines reduces a streaming summary to its deterministic
// lines: everything except wall time (legitimately different across
// runs) and the resume/interrupted/checkpoint status lines, with the
// restored annotation normalized away.
func streamResultLines(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "wall time") || strings.HasPrefix(line, "resume:") ||
			strings.HasPrefix(line, "interrupted:") || strings.HasPrefix(line, "checkpoint:") {
			continue
		}
		keep = append(keep, restoredNote.ReplaceAllString(line, ""))
	}
	return strings.Join(keep, "\n")
}

func TestStreamFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"until-ci without campaign",
			[]string{"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
				"-until-ci", "rel=0.01"},
			"-until-ci and -budget require -campaign"},
		{"budget without campaign",
			[]string{"-preempt", "-R", "10", "-ckpt", "exp:0.5@[1,5]", "-budget", "100"},
			"-until-ci and -budget require -campaign"},
		{"streaming with faultsweep",
			streamArgs("-faultsweep", "25,50"),
			"incompatible with -faultsweep"},
		{"streaming with keep-going",
			streamArgs("-keep-going"),
			"-keep-going is incompatible with streaming"},
		{"bad stop spec",
			append(streamArgs()[:len(streamArgs())-2:len(streamArgs())-2], "-until-ci", "speed=11"),
			"-until-ci: stats: unknown key"},
		{"unknown target",
			streamArgs("-target", "latency"),
			`unknown stream target "latency"`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, &bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestStreamWorkerInvariance: the same streaming run with 1 and 8
// workers must stop at the identical trial count with bit-identical
// aggregates — the printed summaries differ only in wall time.
func TestStreamWorkerInvariance(t *testing.T) {
	var want string
	for _, w := range []int{1, 8} {
		var out bytes.Buffer
		if err := run(streamArgs("-workers", fmt.Sprint(w)), &out); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !strings.Contains(out.String(), "ci target met") {
			t.Fatalf("workers=%d: rule did not fire:\n%s", w, out.String())
		}
		got := streamResultLines(out.String())
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("workers=%d: output differs from workers=1:\n got:\n%s\nwant:\n%s", w, got, want)
		}
	}
}

// TestStreamBudgetExhausted: without a stopping rule the budget bounds
// the stream (rounded up to whole blocks) and the summary plus the
// benchjson row carry the stop reason.
func TestStreamBudgetExhausted(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "stream.json")
	args := []string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "150", "-seed", "9",
		"-budget", "100", "-benchjson", jsonPath,
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	budgetTrials := reskit.StreamBlocks(100) * reskit.StreamBlockTrials
	for _, want := range []string{
		fmt.Sprintf("budget: %d trials (%d blocks)", budgetTrials, reskit.StreamBlocks(100)),
		fmt.Sprintf("%d (%d blocks)", budgetTrials, reskit.StreamBlocks(100)),
		"trial budget exhausted",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("benchjson snapshot: %v", err)
	}
	for _, want := range []string{`"campaign-stream"`, `"stop_reason": "trial budget exhausted"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("benchjson missing %s:\n%s", want, data)
		}
	}
}

// soakStreamArgs is the longer-running rule of the kill-and-resume soak:
// enough trials past the MinN guard that SIGINT reliably lands mid-run.
func soakStreamArgs() []string {
	return []string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "150", "-seed", "11",
		"-until-ci", "rel=0.0004", "-target", "util",
	}
}

// TestStreamSoakSigintResume is the acceptance soak of the streaming
// engine (make stream-soak): the real binary runs an -until-ci campaign
// to a checkpointed frontier, receives SIGINT mid-stream, exits with the
// interrupted code leaving a valid frontier snapshot, and resuming with
// 1, 4 or 8 workers stops at the same trial count with bit-identical
// aggregates.
func TestStreamSoakSigintResume(t *testing.T) {
	path := os.Getenv("SIMULATE_STREAM_CKPT")
	if os.Getenv("SIMULATE_REEXEC") == "1" && path != "" {
		os.Args = append([]string{"simulate"},
			append(soakStreamArgs(), "-checkpoint", path, "-checkpoint-interval", "1ms")...)
		main()
		t.Fatal("main returned instead of exiting") // unreachable on success
	}

	path = filepath.Join(t.TempDir(), "stream.ckpt")
	cmd := exec.Command(os.Args[0], "-test.run", "TestStreamSoakSigintResume")
	cmd.Env = append(os.Environ(), "SIMULATE_REEXEC=1", "SIMULATE_STREAM_CKPT="+path)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	code := sigintAndWait(t, cmd, path, &out)
	if code == 0 {
		t.Skipf("stream finished before SIGINT landed; nothing to resume (output %q)", out.String())
	}
	if code != exitInterrupted {
		t.Fatalf("exit code = %d, want %d (output %q)", code, exitInterrupted, out.String())
	}
	if !strings.Contains(out.String(), "rerun with -resume") {
		t.Errorf("interrupted stream should point at -resume, got %q", out.String())
	}
	st, err := reskit.LoadRunState(path)
	if err != nil {
		t.Fatalf("frontier snapshot left by SIGINT is unusable: %v", err)
	}
	if st.Frontier() == 0 {
		t.Fatal("snapshot recorded no committed frontier")
	}

	var ref bytes.Buffer
	if err := run(soakStreamArgs(), &ref); err != nil {
		t.Fatal(err)
	}
	want := streamResultLines(ref.String())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, 8} {
		copyPath := path + fmt.Sprintf(".w%d", w)
		if err := os.WriteFile(copyPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var resumed bytes.Buffer
		full := append(soakStreamArgs(), "-checkpoint", copyPath, "-resume", "-workers", fmt.Sprint(w))
		if err := run(full, &resumed); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !strings.Contains(resumed.String(), "resume: restoring stream frontier") {
			t.Errorf("workers=%d: resume did not restore the frontier: %q", w, resumed.String())
		}
		if got := streamResultLines(resumed.String()); got != want {
			t.Errorf("workers=%d: resumed output differs from uninterrupted run:\n got:\n%s\nwant:\n%s", w, got, want)
		}
		if _, err := os.Stat(copyPath); !os.IsNotExist(err) {
			t.Errorf("workers=%d: snapshot should be removed after the stop (stat err %v)", w, err)
		}
	}
}
