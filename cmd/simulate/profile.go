package main

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// startCPUProfile begins writing a CPU profile to path and returns the
// function that stops the profile and closes the file.
func startCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile dumps the allocation profile to path.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	return pprof.WriteHeapProfile(f)
}
