package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"reskit"
	"reskit/internal/benchkit"
)

// streamStopReason names why a streaming run ended, for the summary row
// and the benchjson snapshot.
func streamStopReason(ctx context.Context, sres *reskit.EngineStreamResult) string {
	switch {
	case sres.Stopped:
		return "ci target met"
	case sres.Exhausted:
		return "trial budget exhausted"
	case ctx.Err() != nil:
		return stopMarker(ctx)
	default:
		return "run failed"
	}
}

// runCampaignStream is the open-ended flavor of runCampaignMode: instead
// of a fixed trial grid, the campaign streams whole blocks through the
// engine until the -until-ci stopping rule fires on the -target metric
// or the -budget trial cap runs out. Blocks commit in strict index
// order, so the stopping frontier — and every printed aggregate — is
// bit-identical for any worker count, including runs killed and resumed
// from a -checkpoint frontier snapshot.
func runCampaignStream(ctx context.Context, out io.Writer, r, recovery, totalWork float64, taskSpec, taskDiscSpec string,
	ckpt reskit.Continuous, stop reskit.StopSpec, target string, budget int, seed uint64, workers int,
	benchJSON string, plan *reskit.FaultPlan, ckOpts ckptOpts, ob *simObs) error {

	cfg, desc, err := campaignBase(r, recovery, totalWork, taskSpec, taskDiscSpec, ckpt, plan, ob)
	if err != nil {
		return err
	}
	cs, err := reskit.NewCampaignStream(cfg, stop, target)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "campaign stream: R=%g, %s, total work %g\n", r, desc, totalWork)
	if stop.Active() {
		fmt.Fprintf(out, "until: %s CI %s (blocks of %d trials)\n", cs.Target(), stop, reskit.StreamBlockTrials)
	}
	if budget > 0 {
		fmt.Fprintf(out, "budget: %d trials (%d blocks)\n",
			reskit.StreamBlocks(budget)*reskit.StreamBlockTrials, reskit.StreamBlocks(budget))
	}
	if plan.Active() {
		fmt.Fprintf(out, "faults: %v\n", plan)
	}
	fmt.Fprintln(out)

	spec := reskit.EngineStreamSpec{
		Source:      cs.Source(),
		Sink:        cs,
		Seed:        seed,
		Fingerprint: ckOpts.fingerprint,
		Workers:     workers,
		MaxJobs:     reskit.StreamBlocks(budget),
		Checkpoint:  reskit.EngineCheckpoint{Path: ckOpts.path, Interval: ckOpts.interval, Resume: ckOpts.resume},
		Failure:     ckOpts.failure,
		Log:         out,
	}
	if ob != nil {
		spec.Reg = ob.reg
	}
	start := time.Now()
	sres, runErr := reskit.RunEngineStream(ctx, spec)
	elapsed := time.Since(start)
	if err := hardStreamFailure(ctx, runErr, sres); err != nil {
		return err
	}

	reason := streamStopReason(ctx, sres)
	agg := cs.Aggregate()
	freshTrials := sres.Fresh() * reskit.StreamBlockTrials

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "trials\t%d (%d blocks", agg.Trials, sres.Committed)
	if sres.Restored > 0 {
		fmt.Fprintf(tw, ", %d restored", sres.Restored)
	}
	fmt.Fprintf(tw, ")\n")
	fmt.Fprintf(tw, "stopped\t%s\n", reason)
	if stop.Active() {
		hw := cs.HalfWidth()
		mean := cs.TargetSummary().Mean()
		fmt.Fprintf(tw, "mean %s\t%.6g ± %.3g\n", cs.Target(), mean, hw)
	}
	fmt.Fprintf(tw, "mean reservations\t%.4g\n", agg.Reservations)
	fmt.Fprintf(tw, "mean utilization\t%.4g\n", agg.Utilization)
	fmt.Fprintf(tw, "mean lost work\t%.4g\n", agg.LostWork)
	if plan.Active() {
		fmt.Fprintf(tw, "mean ckpt faults\t%.4g\n", agg.CkptFaults)
		fmt.Fprintf(tw, "mean crashes\t%.4g\n", agg.Crashes)
		fmt.Fprintf(tw, "mean revoked res\t%.4g\n", agg.RevokedRes)
	}
	fmt.Fprintf(tw, "util p50/p90/p99\t%.4g / %.4g / %.4g\n",
		cs.UtilizationQuantile(0.5), cs.UtilizationQuantile(0.9), cs.UtilizationQuantile(0.99))
	fmt.Fprintf(tw, "completion rate\t%.4g\n", agg.CompletionRate)
	fmt.Fprintf(tw, "wall time\t%v (%.0f trials/s)\n",
		elapsed.Round(time.Millisecond), float64(freshTrials)/elapsed.Seconds())
	if err := tw.Flush(); err != nil {
		return err
	}
	if ferr := finishStream(ctx, out, runErr, sres, ckOpts); ferr != nil {
		return ferr
	}

	if benchJSON == "" || runErr != nil {
		return nil
	}
	snap := benchkit.NewSnapshot()
	row := benchkit.Result{
		Name:       "campaign-stream",
		Workers:    workers,
		Trials:     int64(agg.Trials),
		Reps:       1,
		StopReason: reason,
	}
	if freshTrials > 0 && elapsed > 0 {
		row.NsPerTrial = float64(elapsed.Nanoseconds()) / float64(freshTrials)
		row.TrialsPerSec = float64(freshTrials) / elapsed.Seconds()
	}
	row.Metrics = engineMetrics(ob)
	if row.Metrics == nil {
		row.Metrics = make(map[string]float64, 4)
	}
	row.Metrics["campaign.mean_reservations"] = agg.Reservations
	row.Metrics["campaign.mean_utilization"] = agg.Utilization
	row.Metrics["campaign.mean_lost_work"] = agg.LostWork
	if hw := cs.HalfWidth(); !math.IsInf(hw, 0) && !math.IsNaN(hw) {
		row.Metrics["campaign.stop_halfwidth"] = hw
	}
	snap.Results = []benchkit.Result{row}
	if err := snap.Write(benchJSON); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nstream snapshot -> %s\n", benchJSON)
	return nil
}

// hardStreamFailure is hardFailure for streaming runs: interruptions
// fall through to the partial report, and so does a run that reached a
// natural end (stop rule fired, budget exhausted) but could not persist
// its final snapshot — the results printed are complete. Everything
// else aborts before numbers print.
func hardStreamFailure(ctx context.Context, runErr error, sres *reskit.EngineStreamResult) error {
	if runErr == nil || ctx.Err() != nil {
		return nil
	}
	var serr *reskit.EngineSnapshotError
	if errors.As(runErr, &serr) && (sres.Stopped || sres.Exhausted) {
		return nil
	}
	return runErr
}

// finishStream emits the post-run status block of a streaming run: the
// snapshot-loss warning and the resume hint, mirroring finishRun for a
// frontier (rather than a job-set) snapshot.
func finishStream(ctx context.Context, out io.Writer, runErr error, sres *reskit.EngineStreamResult, ck ckptOpts) error {
	if runErr == nil {
		return nil
	}
	var serr *reskit.EngineSnapshotError
	snapLost := errors.As(runErr, &serr)
	if snapLost {
		fmt.Fprintf(out, "\nWARNING: run state is not durable: %v\n", serr.Err)
	}
	if ctx.Err() != nil && ck.path != "" {
		if snapLost {
			fmt.Fprintf(out, "interrupted: %d blocks committed, but the snapshot at %s is stale or missing — resuming will recompute the lost work\n",
				sres.Committed, ck.path)
		} else {
			fmt.Fprintf(out, "\ninterrupted: frontier at block %d committed to %s; rerun with -resume to continue\n",
				sres.Committed, ck.path)
		}
	}
	return nil
}
