package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reskit"
)

// stableLines strips the resume/interrupted/checkpoint status lines, so
// a resumed run can be compared bit-for-bit against an uninterrupted
// reference (whose output has none of them).
func stableLines(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "resume:") || strings.HasPrefix(line, "interrupted:") ||
			strings.HasPrefix(line, "checkpoint:") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// sigintAndWait polls until the snapshot file exists, SIGINTs the child,
// and returns its exit code (asserting a graceful interrupted exit).
func sigintAndWait(t *testing.T, cmd *exec.Cmd, path string, out *bytes.Buffer) int {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no snapshot appeared within 30s (output %q)", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		return 0 // finished before the signal landed
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error after SIGINT, got %v (output %q)", err, out.String())
	}
	return ee.ExitCode()
}

// resumeAcrossWorkers replays the interrupted snapshot with 1, 4 and 8
// workers (each from its own copy — a completed resume removes its
// snapshot) and requires every resumed output bit-identical to ref.
func resumeAcrossWorkers(t *testing.T, snapshot string, args []string, ref string) {
	t.Helper()
	data, err := os.ReadFile(snapshot)
	if err != nil {
		t.Fatalf("reading interrupted snapshot: %v", err)
	}
	for _, w := range []int{1, 4, 8} {
		copyPath := snapshot + fmt.Sprintf(".w%d", w)
		if err := os.WriteFile(copyPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var resumed bytes.Buffer
		full := append(append([]string{}, args...),
			"-checkpoint", copyPath, "-resume", "-workers", fmt.Sprint(w))
		if err := run(full, &resumed); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !strings.Contains(resumed.String(), "resume: restoring") {
			t.Errorf("workers=%d: resume did not restore jobs: %q", w, resumed.String())
		}
		if got := stableLines(resumed.String()); got != ref {
			t.Errorf("workers=%d: resumed output differs from uninterrupted run:\n got:\n%s\nwant:\n%s", w, got, ref)
		}
		if _, err := os.Stat(copyPath); !os.IsNotExist(err) {
			t.Errorf("workers=%d: snapshot should be removed after completion (stat err %v)", w, err)
		}
	}
}

// faultsweepArgs is the fixed sweep grid of the kill-and-resume test.
func faultsweepArgs() []string {
	return []string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "150", "-trials", "12000", "-seed", "11",
		"-faultsweep", "25,50",
	}
}

// TestFaultsweepSigintResume is the acceptance test of the unified
// engine for -faultsweep: the real binary runs a checkpointed sweep,
// receives SIGINT mid-grid, exits with the interrupted code leaving a
// valid snapshot, and resuming — with 1, 4 or 8 workers — reproduces
// every sweep row bit-for-bit.
func TestFaultsweepSigintResume(t *testing.T) {
	path := os.Getenv("SIMULATE_SWEEP_CKPT")
	if os.Getenv("SIMULATE_REEXEC") == "1" && path != "" {
		os.Args = append([]string{"simulate"},
			append(faultsweepArgs(), "-checkpoint", path, "-checkpoint-interval", "1ms")...)
		main()
		t.Fatal("main returned instead of exiting") // unreachable on success
	}

	path = filepath.Join(t.TempDir(), "sweep.ckpt")
	cmd := exec.Command(os.Args[0], "-test.run", "TestFaultsweepSigintResume")
	cmd.Env = append(os.Environ(), "SIMULATE_REEXEC=1", "SIMULATE_SWEEP_CKPT="+path)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	code := sigintAndWait(t, cmd, path, &out)
	if code == 0 {
		t.Skipf("sweep finished before SIGINT landed; nothing to resume (output %q)", out.String())
	}
	if code != exitInterrupted {
		t.Fatalf("exit code = %d, want %d (output %q)", code, exitInterrupted, out.String())
	}
	if !strings.Contains(out.String(), "rerun with -resume") {
		t.Errorf("interrupted sweep should point at -resume, got %q", out.String())
	}
	st, err := reskit.LoadRunState(path)
	if err != nil {
		t.Fatalf("snapshot left by SIGINT is unusable: %v", err)
	}
	if st.Done() == 0 {
		t.Fatal("snapshot recorded no completed jobs")
	}

	var ref bytes.Buffer
	if err := run(faultsweepArgs(), &ref); err != nil {
		t.Fatal(err)
	}
	resumeAcrossWorkers(t, path, faultsweepArgs(), stableLines(ref.String()))
}

// workflowArgs is the fixed strategy comparison of the kill-and-resume
// test.
func workflowArgs() []string {
	return []string{
		"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "250000", "-seed", "11", "-strategies", "dynamic,static",
	}
}

// TestWorkflowSigintResume is the same acceptance test for the strategy
// comparison mode: SIGINT mid-comparison, then bit-identical resumes
// with 1, 4 and 8 workers.
func TestWorkflowSigintResume(t *testing.T) {
	path := os.Getenv("SIMULATE_WF_CKPT")
	if os.Getenv("SIMULATE_REEXEC") == "1" && path != "" {
		os.Args = append([]string{"simulate"},
			append(workflowArgs(), "-checkpoint", path, "-checkpoint-interval", "1ms")...)
		main()
		t.Fatal("main returned instead of exiting") // unreachable on success
	}

	path = filepath.Join(t.TempDir(), "wf.ckpt")
	cmd := exec.Command(os.Args[0], "-test.run", "TestWorkflowSigintResume")
	cmd.Env = append(os.Environ(), "SIMULATE_REEXEC=1", "SIMULATE_WF_CKPT="+path)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	code := sigintAndWait(t, cmd, path, &out)
	if code == 0 {
		t.Skipf("comparison finished before SIGINT landed; nothing to resume (output %q)", out.String())
	}
	if code != exitInterrupted {
		t.Fatalf("exit code = %d, want %d (output %q)", code, exitInterrupted, out.String())
	}
	st, err := reskit.LoadRunState(path)
	if err != nil {
		t.Fatalf("snapshot left by SIGINT is unusable: %v", err)
	}
	if st.Done() == 0 {
		t.Fatal("snapshot recorded no completed jobs")
	}

	var ref bytes.Buffer
	if err := run(workflowArgs(), &ref); err != nil {
		t.Fatal(err)
	}
	resumeAcrossWorkers(t, path, workflowArgs(), stableLines(ref.String()))
}

// TestCheckpointAllModesAccepted replaces the deleted flag restrictions:
// -checkpoint now works in every mode, and a run that completes removes
// its snapshot.
func TestCheckpointAllModesAccepted(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"preempt", []string{
			"-preempt", "-R", "10", "-ckpt", "exp:0.5@[1,5]", "-trials", "3000", "-seed", "3"}},
		{"workflow", []string{
			"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
			"-trials", "2000", "-seed", "3", "-strategies", "dynamic"}},
		{"benchjson", []string{
			"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
			"-recovery", "1.5", "-totalwork", "120", "-trials", "50", "-seed", "3",
			"-benchjson", filepath.Join(dir, "bench.json")}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".ckpt")
			var buf bytes.Buffer
			if err := run(append(append([]string{}, tc.args...), "-checkpoint", path), &buf); err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("snapshot should be removed after a completed run (stat err %v)", err)
			}
		})
	}
}
