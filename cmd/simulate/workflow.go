package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"

	"reskit"
	"reskit/internal/dist"
	"reskit/internal/engine"
	"reskit/internal/lawspec"
	"reskit/internal/rng"
	"reskit/internal/sim"
	"reskit/internal/stats"
)

// stratSpec is one resolved strategy of the comparison: either a
// runnable configuration (cfg, oracle) or a table note explaining why
// the strategy cannot run under the current flags.
type stratSpec struct {
	name   string
	note   string // non-empty: print the note row, schedule no jobs
	cfg    reskit.SimConfig
	oracle bool
}

// runWorkflow compares checkpoint strategies on the workflow
// reservation (the paper's Figure 8/10 setting). Every strategy's
// Monte-Carlo runs as blocks of one shared engine grid, so the whole
// comparison is resumable with -checkpoint/-resume and the printed
// table is bit-identical for any worker count. Block b of every
// strategy draws rng substream b — exactly what a standalone run of
// that strategy would draw — so each row matches the single-strategy
// result to the bit.
func runWorkflow(ctx context.Context, out io.Writer, r, recovery, failRate float64, taskSpec, taskDiscSpec string, ckpt reskit.Continuous,
	trials int, seed uint64, workers int, strategyList string, hist bool, plan *reskit.FaultPlan, ckOpts ckptOpts, ob *simObs) error {

	base := reskit.SimConfig{R: r, Recovery: recovery, Ckpt: ckpt, FailureRate: failRate, Faults: plan}
	ob.attach(&base)
	if plan.Active() {
		fmt.Fprintf(out, "faults: %v\n", plan)
	}
	var taskMeanLaw interface {
		Mean() float64
		Quantile(float64) float64
	}
	var static *reskit.Static
	var dynamic *reskit.Dynamic
	switch {
	case taskSpec != "":
		law, err := lawspec.Parse(taskSpec)
		if err != nil {
			return err
		}
		base.Task = law
		taskMeanLaw = law
		if dynamic, err = reskit.TryNewDynamic(r, law, ckpt); err != nil {
			return err
		}
		if s, ok := law.(reskit.Summable); ok {
			static, err = reskit.TryNewStatic(r, s, ckpt)
		} else {
			// Truncated laws are not Summable; approximate the static
			// problem with a Normal matching the first two moments.
			static, err = reskit.TryNewStatic(r, reskit.Normal(law.Mean(), math.Sqrt(law.Variance())), ckpt)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "workflow: R=%g, X ~ %v, C ~ %v, %d trials\n\n", r, law, ckpt, trials)
	case taskDiscSpec != "":
		law, err := lawspec.ParseDiscrete(taskDiscSpec)
		if err != nil {
			return err
		}
		base.TaskDisc = law
		if dynamic, err = reskit.TryNewDynamicDiscrete(r, law, ckpt); err != nil {
			return err
		}
		if s, ok := law.(reskit.SummableDiscrete); ok {
			if static, err = reskit.TryNewStaticDiscrete(r, s, ckpt); err != nil {
				return err
			}
		} else {
			return fmt.Errorf("discrete law %v does not support the static strategy", law)
		}
		taskMeanLaw = poissonQuantiler{law}
		fmt.Fprintf(out, "workflow: R=%g, X ~ %v (discrete), C ~ %v, %d trials\n\n", r, law, ckpt, trials)
	default:
		return errors.New("-task or -taskdisc is required (or use -preempt)")
	}

	sol := static.Optimize()
	wInt, wErr := dynamic.Intersection()

	// Resolve every requested strategy before any simulation runs, so
	// configuration problems (an unknown name, an unusable pessimistic
	// bound) surface as errors up front, not mid-table.
	var specs []stratSpec
	for _, name := range strings.Split(strategyList, ",") {
		name = strings.TrimSpace(name)
		s := stratSpec{name: name, cfg: base}
		switch name {
		case "oracle":
			s.cfg.Strategy = reskit.NeverStrategy()
			s.oracle = true
		case "dynamic":
			s.cfg.Strategy = ob.counted(reskit.DynamicStrategy(dynamic))
		case "static":
			s.cfg.Strategy = ob.counted(reskit.StaticStrategy(sol.NOpt))
		case "threshold":
			if wErr != nil {
				s.note = "(no intersection)"
				break
			}
			s.cfg.Strategy = ob.counted(reskit.ThresholdStrategy(wInt))
		case "pessimistic":
			pess, perr := reskit.TryPessimisticStrategy(
				taskMeanLaw.Quantile(0.9999), ckpt.Quantile(0.9999))
			if perr != nil {
				return perr
			}
			s.cfg.Strategy = ob.counted(pess)
		case "never":
			s.cfg.Strategy = ob.counted(reskit.NeverStrategy())
		case "youngdaly":
			if failRate <= 0 {
				s.note = "(needs -failrate > 0)"
				break
			}
			s.cfg.Strategy = ob.counted(reskit.YoungDalyStrategy(1/failRate, ckpt.Mean()))
			s.cfg.After = reskit.ContinueExecution
		default:
			return fmt.Errorf("unknown strategy %q", name)
		}
		specs = append(specs, s)
	}

	// One engine job per (runnable strategy, block); offsets[i] is the
	// base job index of specs[i] (-1 for note rows).
	numBlocks := sim.NumMonteCarloBlocks(trials)
	offsets := make([]int, len(specs))
	var jobs []engine.Job
	for si := range specs {
		if specs[si].note != "" {
			offsets[si] = -1
			continue
		}
		offsets[si] = len(jobs)
		for b := 0; b < numBlocks; b++ {
			si, b := si, b
			jobs = append(jobs, engine.Job{
				Name:   fmt.Sprintf("%s/block%d", specs[si].name, b),
				Stream: uint64(b),
				Run: func(ctx context.Context, src *rng.Source) (engine.JobResult, error) {
					data, err := sim.MonteCarloBlockPayload(ctx, specs[si].cfg, trials, b, specs[si].oracle, src)
					return engine.JobResult{Payload: data}, err
				},
			})
		}
	}

	check := func(_ int, data []byte) error { return sim.CheckMonteCarloPayload(data) }
	res, runErr := engine.Run(ctx, ckOpts.spec(jobs, seed, workers, out, ob, check))
	if err := hardFailure(ctx, runErr, res); err != nil {
		return err
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	faulty := plan.Active()
	if faulty {
		fmt.Fprintf(tw, "strategy\tE(saved)\t±95%%\tE(tasks)\tE(ckpts)\tE(ckptfaults)\tE(crashes)\trevoked\tzero-runs\n")
	} else {
		fmt.Fprintf(tw, "strategy\tE(saved)\t±95%%\tE(tasks)\tE(ckpts)\tzero-runs\n")
	}
	for si, s := range specs {
		if s.note != "" {
			fmt.Fprintf(tw, "%s\t%s\n", s.name, s.note)
			continue
		}
		agg, err := sim.MergeMonteCarloPayloads(res.Payloads[offsets[si] : offsets[si]+numBlocks])
		if err != nil {
			return err
		}
		if agg.Trials > 0 {
			zeroPct := 100 * float64(agg.ZeroRuns) / float64(agg.Trials)
			if faulty {
				fmt.Fprintf(tw, "%s\t%.5g\t%.2g\t%.4g\t%.3g\t%.3g\t%.3g\t%.2f%%\t%.2f%%\n",
					s.name, agg.Saved.Mean(), agg.Saved.CI95(), agg.Tasks.Mean(), agg.Checkpoints.Mean(),
					agg.CkptFaults.Mean(), agg.Failures.Mean(),
					100*float64(agg.RevokedRuns)/float64(agg.Trials), zeroPct)
			} else {
				fmt.Fprintf(tw, "%s\t%.5g\t%.2g\t%.4g\t%.3g\t%.2f%%\n",
					s.name, agg.Saved.Mean(), agg.Saved.CI95(), agg.Tasks.Mean(), agg.Checkpoints.Mean(), zeroPct)
			}
		}
		if int(agg.Trials) < trials {
			fmt.Fprintf(tw, "%s\t(%s after %d/%d trials)\n", s.name, stopMarker(ctx), agg.Trials, trials)
			break
		}
		if hist {
			if err := printHistogram(tw, s.name, s.cfg, trials, seed, r); err != nil {
				return err
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if runErr != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(out, "\n%s (%v); remaining strategies skipped\n", stopMarker(ctx), runErr)
		}
		return finishRun(ctx, out, runErr, res, ckOpts)
	}
	fmt.Fprintf(out, "\nstatic n_opt = %d (E = %.5g analytic)\n", sol.NOpt, sol.ENOpt)
	if wErr == nil {
		fmt.Fprintf(out, "dynamic W_int = %.5g\n", wInt)
	}
	return nil
}

// printHistogram re-runs a small sample of reservations and renders the
// saved-work distribution as a 40-column ASCII bar chart.
func printHistogram(out io.Writer, name string, cfg reskit.SimConfig, trials int, seed uint64, rMax float64) error {
	n := trials
	if n > 5000 {
		n = 5000
	}
	h := stats.NewHistogram(0, rMax, 10)
	src := reskit.NewRNGStream(seed, 999)
	for i := 0; i < n; i++ {
		h.Add(reskit.Simulate(cfg, src).Saved)
	}
	peak := int64(1)
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	w := rMax / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("#", int(40*c/peak))
		fmt.Fprintf(out, "  [%5.1f-%5.1f)\t%s %d\n", float64(i)*w, float64(i+1)*w, bar, c)
	}
	return nil
}

// poissonQuantiler adapts a discrete law to the Quantile interface used
// for the pessimistic bound.
type poissonQuantiler struct{ d reskit.Discrete }

func (p poissonQuantiler) Mean() float64 { return p.d.Mean() }

func (p poissonQuantiler) Quantile(q float64) float64 {
	return float64(dist.DiscreteQuantile(p.d, q))
}
