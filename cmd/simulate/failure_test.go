package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func failureArgs(extra ...string) []string {
	return append([]string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "120", "-trials", "100", "-seed", "4",
	}, extra...)
}

func TestFailurePolicyFlagValidation(t *testing.T) {
	var out bytes.Buffer
	err := run(failureArgs("-failure-policy", "retries=2", "-retries", "3"), &out)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v, want mutual-exclusion error", err)
	}
	err = run(failureArgs("-failure-policy", "turbo=1"), &out)
	if err == nil || !strings.Contains(err.Error(), "turbo") {
		t.Fatalf("err = %v, want unknown-key parse error", err)
	}
	err = run(failureArgs("-retries", "-1"), &out)
	if err == nil {
		t.Fatal("negative -retries must be rejected")
	}
}

// An active failure policy must not perturb a fault-free run: the
// aggregates are bit-identical with and without it, whichever way the
// policy is spelled.
func TestFailurePolicyIsInertOnCleanRuns(t *testing.T) {
	var plain, withFlags, withSpec bytes.Buffer
	if err := run(failureArgs(), &plain); err != nil {
		t.Fatal(err)
	}
	if err := run(failureArgs("-retries", "3", "-retry-backoff", "1ms", "-job-timeout", "1m", "-keep-going"), &withFlags); err != nil {
		t.Fatal(err)
	}
	if err := run(failureArgs("-failure-policy", "retries=3,backoff=1ms,timeout=1m,keep-going"), &withSpec); err != nil {
		t.Fatal(err)
	}
	want := campaignResultLines(plain.String())
	if got := campaignResultLines(withFlags.String()); got != want {
		t.Errorf("individual flags changed the aggregates:\n got:\n%s\nwant:\n%s", got, want)
	}
	if got := campaignResultLines(withSpec.String()); got != want {
		t.Errorf("-failure-policy changed the aggregates:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// A run whose snapshot can never land (checkpoint path in a missing
// directory) must still complete — disk errors never interrupt the
// simulation — but the output has to warn that the run state is not
// durable instead of claiming anything resumable.
func TestCompletedRunWithDeadSnapshotDiskWarns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "run.ckpt")
	var out bytes.Buffer
	if err := run(failureArgs("-checkpoint", path), &out); err != nil {
		t.Fatalf("completed run must not fail on snapshot loss alone: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "WARNING: run state is not durable") {
		t.Errorf("missing durability warning:\n%s", got)
	}
	if strings.Contains(got, "rerun with -resume") {
		t.Errorf("dead-disk run must not claim resumability:\n%s", got)
	}
	if !strings.Contains(got, "mean reservations") {
		t.Errorf("aggregates missing despite completed run:\n%s", got)
	}
}
