// Command simulate runs the Monte-Carlo experimental campaign the paper's
// conclusion calls for: it compares checkpoint strategies (oracle,
// dynamic, static, threshold, pessimistic, never) on a workflow
// reservation, or validates the analytical E(W(X)) of the preemptible
// scenario against simulation.
//
// Workflow strategy comparison (Figure 8 instance):
//
//	simulate -R 29 -task 'norm:3,0.5@[0,inf]' -ckpt 'norm:5,0.4@[0,inf]' -trials 100000
//
// Discrete tasks (Figure 10 instance):
//
//	simulate -R 29 -taskdisc 'poisson:3' -ckpt 'norm:5,0.4@[0,inf]'
//
// Preemptible validation (Figure 2a instance):
//
//	simulate -preempt -R 10 -ckpt 'exp:0.5@[1,5]' -trials 200000
//
// Multi-reservation campaign (Sections 1-2), sharded across all CPUs:
//
//	simulate -campaign -R 29 -task 'norm:3,0.5@[0,inf]' -ckpt 'norm:5,0.4@[0,inf]' \
//	    -recovery 1.5 -totalwork 500 -trials 1000
//
// Streaming campaign with a sequential stopping rule — trial blocks
// stream until the target's CI is tight enough or the budget runs out:
//
//	simulate -campaign -R 29 -task 'norm:3,0.5@[0,inf]' -ckpt 'norm:5,0.4@[0,inf]' \
//	    -recovery 1.5 -totalwork 500 -until-ci 'rel=0.005' -budget 200000
//
// Add -benchjson BENCH_campaign.json to record a serial-vs-parallel
// throughput snapshot, and -cpuprofile/-memprofile to profile any mode
// with runtime/pprof.
//
// Every mode runs on the shared job engine (internal/engine): the run
// is a grid of deterministic jobs — one Monte-Carlo block per strategy,
// policy, campaign or sweep cell — so -checkpoint/-resume gives any
// mode durable, bit-identical restarts, and SIGINT/SIGTERM always
// drains at the next job boundary before exiting with code 3.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reskit"
	"reskit/internal/lawspec"
)

// exitInterrupted is the exit code of a run cut short by SIGINT/SIGTERM:
// workers drained cleanly and (with -checkpoint) the final snapshot plus
// exact partial aggregates were written, so the run is resumable.
const exitInterrupted = 3

// errInterrupted marks a run stopped by a termination signal after a
// graceful drain, distinguishing "resumable interruption" from failure.
var errInterrupted = errors.New("interrupted by signal; partial results flushed")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		if errors.Is(err, errInterrupted) {
			os.Exit(exitInterrupted)
		}
		if errors.Is(err, errDegraded) {
			os.Exit(exitDegraded)
		}
		os.Exit(1)
	}
}

// run executes one CLI invocation. Invalid inputs surface as errors
// (constructors are the TryNew* variants, laws are parsed); there is
// deliberately no recover() here — a panic that reaches this frame is a
// programming bug and should crash loudly with its stack trace.
func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	r := fs.Float64("R", 0, "reservation length (required)")
	ckptSpec := fs.String("ckpt", "", "checkpoint-duration law (required)")
	taskSpec := fs.String("task", "", "continuous task law")
	taskDiscSpec := fs.String("taskdisc", "", "discrete task law")
	preempt := fs.Bool("preempt", false, "validate the preemptible scenario instead")
	campaign := fs.Bool("campaign", false, "run a multi-reservation campaign Monte-Carlo instead")
	totalWork := fs.Float64("totalwork", 500, "total application work for -campaign")
	benchJSON := fs.String("benchjson", "", "with -campaign: write a serial-vs-parallel benchmark snapshot to this JSON file")
	trials := fs.Int("trials", 100000, "Monte-Carlo trials")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = all CPUs)")
	recovery := fs.Float64("recovery", 0, "recovery time at reservation start")
	failRate := fs.Float64("failrate", 0, "fail-stop error rate inside the reservation (0 = failure-free)")
	faultSpec := fs.String("faults", "", "fault plan, e.g. 'crash=exp:0.02,ckptfail=0.05,revoke=uniform:0.1'")
	mtbf := fs.Float64("mtbf", 0, "shorthand for -faults 'crash=exp:1/MTBF' (exponential fail-stop crashes)")
	ckptFailP := fs.Float64("ckptfail", 0, "shorthand for -faults 'ckptfail=P' (Bernoulli checkpoint-commit failures)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget; the Monte-Carlo stops cleanly at the deadline and reports the trials completed")
	faultSweep := fs.String("faultsweep", "", "with -campaign: comma-separated MTBF grid; reruns the campaign at each MTBF and prints the lost-work/completion trade-off")
	untilCI := fs.String("until-ci", "", "with -campaign: stream trial blocks until this stopping rule fires, e.g. 'rel=0.005,conf=0.99,min=5000,qtol=0.02' (a bare number means rel=); replaces -trials")
	stopTarget := fs.String("target", "util", "with -until-ci: the metric the stopping rule watches (util, lost, res)")
	budget := fs.Int("budget", 0, "with -campaign streaming: hard trial cap, rounded up to whole blocks (0 with -until-ci = unbounded); replaces -trials")
	checkpointPath := fs.String("checkpoint", "", "with -campaign: periodically snapshot run state to this file; an interrupted run can continue with -resume")
	checkpointInterval := fs.Duration("checkpoint-interval", 10*time.Second, "with -checkpoint: minimum interval between snapshots")
	resume := fs.Bool("resume", false, "with -checkpoint: restore completed blocks from the snapshot file and run only the missing ones")
	retries := fs.Int("retries", 0, "per-job retry budget for transient failures (a job runs at most retries+1 attempts)")
	retryBackoff := fs.Duration("retry-backoff", 0, "base of the deterministic exponential retry backoff (default 100ms when -retries > 0)")
	jobTimeout := fs.Duration("job-timeout", 0, "deadline per job attempt; a timed-out attempt is retryable under the -retries budget")
	keepGoing := fs.Bool("keep-going", false, "record permanently failed jobs and keep running the rest; exits with code 4 and leaves failed jobs resumable")
	failurePolicy := fs.String("failure-policy", "", "compact failure policy, e.g. 'retries=3,backoff=50ms,timeout=1m,keep-going' (mutually exclusive with the individual failure flags)")
	strategies := fs.String("strategies", "oracle,dynamic,static,threshold,pessimistic",
		"comma-separated strategies to compare")
	hist := fs.Bool("hist", false, "print an ASCII histogram of saved work for each strategy")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	progress := fs.Bool("progress", false, "print live trials/sec progress to stderr")
	metricsPath := fs.String("metrics", "", "write a JSON metrics snapshot (counters, histograms) to this file on exit")
	listenAddr := fs.String("listen", "", "serve live expvar metrics and pprof on this address (e.g. :6060)")
	tracePath := fs.String("trace", "", "stream sampled per-trial events (task ends, checkpoints, faults) to this JSONL file")
	traceEvery := fs.Int64("tracesample", 1000, "with -trace: record one trial in every N (<=1 traces all; sampling is by trial index, deterministic)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *r <= 0 {
		return errors.New("-R must be positive")
	}
	if *ckptSpec == "" {
		return errors.New("-ckpt is required")
	}
	ckpt, err := lawspec.Parse(*ckptSpec)
	if err != nil {
		return err
	}
	plan, err := reskit.ParseFaults(*faultSpec)
	if err != nil {
		return err
	}
	if *mtbf != 0 {
		if !(*mtbf > 0) {
			return errors.New("-mtbf must be positive")
		}
		crash, err := reskit.CrashExponential(1 / *mtbf)
		if err != nil {
			return err
		}
		if plan == nil {
			plan = &reskit.FaultPlan{}
		}
		plan.Crash = crash
	}
	if *ckptFailP != 0 {
		ckptModel, err := reskit.CkptFailBernoulli(*ckptFailP)
		if err != nil {
			return err
		}
		if plan == nil {
			plan = &reskit.FaultPlan{}
		}
		plan.Ckpt = ckptModel
	}
	if *resume && *checkpointPath == "" {
		return errors.New("-resume requires -checkpoint")
	}
	failure := reskit.EngineFailure{
		Retries:    *retries,
		Backoff:    *retryBackoff,
		JobTimeout: *jobTimeout,
		KeepGoing:  *keepGoing,
	}
	if *failurePolicy != "" {
		if failure != (reskit.EngineFailure{}) {
			return errors.New("-failure-policy is mutually exclusive with -retries/-retry-backoff/-job-timeout/-keep-going")
		}
		if failure, err = reskit.ParseEngineFailure(*failurePolicy); err != nil {
			return err
		}
	}
	// SIGINT/SIGTERM cancel the context: workers drain at the next block
	// boundary, partial aggregates are reported exactly, and (with
	// -checkpoint) a final snapshot lands on disk before the process exits
	// with the distinct "interrupted but resumable" code.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	ctx := sigCtx
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// The interrupted exit code must fire even when the mode function
	// finishes its partial report cleanly, so the signal check wraps every
	// successful return below.
	defer func() {
		if err == nil && sigCtx.Err() != nil {
			err = errInterrupted
		}
	}()
	if *cpuProfile != "" {
		stop, err := startCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if werr := writeMemProfile(*memProfile); werr != nil && err == nil {
				err = werr
			}
		}()
	}
	// A single Monte-Carlo (campaign mode) has a known trial total for the
	// progress ETA, and a fault sweep repeats it per grid row; the workflow
	// mode runs one Monte-Carlo per strategy, so progress renders counts
	// and rate without a percentage.
	streaming := *campaign && (*untilCI != "" || *budget > 0)
	progressTotal := int64(0)
	switch {
	case streaming:
		// A budget bounds the stream (rounded up to whole blocks); without
		// one the total is unknown and progress renders counts and rate
		// with the live CI half-width instead of an ETA.
		progressTotal = int64(reskit.StreamBlocks(*budget)) * reskit.StreamBlockTrials
	case *campaign && *benchJSON == "":
		progressTotal = int64(*trials)
		if *faultSweep != "" {
			progressTotal *= int64(len(strings.Split(*faultSweep, ",")))
		}
	}
	// The saved-work distribution always feeds the "sim.saved_work"
	// quantile sketch; the legacy fixed-layout [0, R) histogram is bound
	// only while -hist keeps it alive.
	savedMax := 0.0
	if *hist {
		savedMax = *r
	}
	ob, err := setupObs(out, *progress, *metricsPath, *listenAddr, *tracePath, *traceEvery, savedMax, progressTotal)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := ob.finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	// The fingerprint ties a snapshot to the configuration facets that
	// shape the payloads of the selected mode. Workers are deliberately
	// excluded: resuming with a different worker count is legal and still
	// bit-identical.
	ck := ckptOpts{path: *checkpointPath, interval: *checkpointInterval, resume: *resume, failure: failure}
	if streaming {
		if *faultSweep != "" {
			return errors.New("-until-ci/-budget are incompatible with -faultsweep")
		}
		if failure.KeepGoing {
			return errors.New("-keep-going is incompatible with streaming (-until-ci/-budget): a permanently failed block would stall the commit frontier")
		}
		stop, err := reskit.ParseStopSpec(*untilCI)
		if err != nil {
			return fmt.Errorf("-until-ci: %w", err)
		}
		// The stream fingerprint carries the stop rule and its target —
		// they shape where the run ends — but neither the budget nor the
		// worker count: resuming with a different budget is as legal as
		// resuming with different parallelism, and still bit-identical on
		// the shared prefix.
		ck.fingerprint = reskit.ConfigFingerprint(
			"campaign stream target="+*stopTarget+" stop="+stop.String(),
			fmt.Sprintf("R=%g", *r),
			fmt.Sprintf("recovery=%g", *recovery),
			"task="+*taskSpec,
			"taskdisc="+*taskDiscSpec,
			"ckpt="+*ckptSpec,
			fmt.Sprintf("totalwork=%g", *totalWork),
			fmt.Sprintf("faults=%v", plan),
			fmt.Sprintf("seed=%d", *seed),
		)
		return runCampaignStream(ctx, out, *r, *recovery, *totalWork, *taskSpec, *taskDiscSpec,
			ckpt, stop, *stopTarget, *budget, *seed, *workers, *benchJSON, plan, ck, ob)
	}
	if *untilCI != "" || *budget > 0 {
		return errors.New("-until-ci and -budget require -campaign")
	}
	if *campaign {
		mode := "campaign"
		switch {
		case *faultSweep != "":
			mode = "campaign faultsweep=" + *faultSweep
		case *benchJSON != "":
			mode = "campaign benchjson"
		}
		ck.fingerprint = reskit.ConfigFingerprint(
			mode,
			fmt.Sprintf("R=%g", *r),
			fmt.Sprintf("recovery=%g", *recovery),
			"task="+*taskSpec,
			"taskdisc="+*taskDiscSpec,
			"ckpt="+*ckptSpec,
			fmt.Sprintf("totalwork=%g", *totalWork),
			fmt.Sprintf("faults=%v", plan),
			fmt.Sprintf("trials=%d", *trials),
			fmt.Sprintf("seed=%d", *seed),
		)
		return runCampaignMode(ctx, out, *r, *recovery, *totalWork, *taskSpec, *taskDiscSpec,
			ckpt, *trials, *seed, *workers, *benchJSON, plan, *faultSweep, ck, ob)
	}
	if *faultSweep != "" {
		return errors.New("-faultsweep requires -campaign")
	}
	if *preempt {
		ck.fingerprint = reskit.ConfigFingerprint(
			"preempt",
			fmt.Sprintf("R=%g", *r),
			"ckpt="+*ckptSpec,
			fmt.Sprintf("trials=%d", *trials),
			fmt.Sprintf("seed=%d", *seed),
		)
		return runPreempt(ctx, out, *r, ckpt, *trials, *seed, *workers, ck, ob)
	}
	ck.fingerprint = reskit.ConfigFingerprint(
		"workflow",
		fmt.Sprintf("R=%g", *r),
		fmt.Sprintf("recovery=%g", *recovery),
		fmt.Sprintf("failrate=%g", *failRate),
		"task="+*taskSpec,
		"taskdisc="+*taskDiscSpec,
		"ckpt="+*ckptSpec,
		"strategies="+*strategies,
		fmt.Sprintf("faults=%v", plan),
		fmt.Sprintf("trials=%d", *trials),
		fmt.Sprintf("seed=%d", *seed),
	)
	return runWorkflow(ctx, out, *r, *recovery, *failRate, *taskSpec, *taskDiscSpec, ckpt, *trials, *seed, *workers, *strategies, *hist, plan, ck, ob)
}
