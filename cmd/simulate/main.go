// Command simulate runs the Monte-Carlo experimental campaign the paper's
// conclusion calls for: it compares checkpoint strategies (oracle,
// dynamic, static, threshold, pessimistic, never) on a workflow
// reservation, or validates the analytical E(W(X)) of the preemptible
// scenario against simulation.
//
// Workflow strategy comparison (Figure 8 instance):
//
//	simulate -R 29 -task 'norm:3,0.5@[0,inf]' -ckpt 'norm:5,0.4@[0,inf]' -trials 100000
//
// Discrete tasks (Figure 10 instance):
//
//	simulate -R 29 -taskdisc 'poisson:3' -ckpt 'norm:5,0.4@[0,inf]'
//
// Preemptible validation (Figure 2a instance):
//
//	simulate -preempt -R 10 -ckpt 'exp:0.5@[1,5]' -trials 200000
//
// Multi-reservation campaign (Sections 1-2), sharded across all CPUs:
//
//	simulate -campaign -R 29 -task 'norm:3,0.5@[0,inf]' -ckpt 'norm:5,0.4@[0,inf]' \
//	    -recovery 1.5 -totalwork 500 -trials 1000
//
// Add -benchjson BENCH_campaign.json to record a serial-vs-parallel
// throughput snapshot, and -cpuprofile/-memprofile to profile any mode
// with runtime/pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"reskit"
	"reskit/internal/dist"
	"reskit/internal/lawspec"
	"reskit/internal/stats"
)

// exitInterrupted is the exit code of a run cut short by SIGINT/SIGTERM:
// workers drained cleanly and (with -checkpoint) the final snapshot plus
// exact partial aggregates were written, so the run is resumable.
const exitInterrupted = 3

// errInterrupted marks a run stopped by a termination signal after a
// graceful drain, distinguishing "resumable interruption" from failure.
var errInterrupted = errors.New("interrupted by signal; partial results flushed")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		if errors.Is(err, errInterrupted) {
			os.Exit(exitInterrupted)
		}
		os.Exit(1)
	}
}

// run executes one CLI invocation. Invalid inputs surface as errors
// (constructors are the TryNew* variants, laws are parsed); there is
// deliberately no recover() here — a panic that reaches this frame is a
// programming bug and should crash loudly with its stack trace.
func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	r := fs.Float64("R", 0, "reservation length (required)")
	ckptSpec := fs.String("ckpt", "", "checkpoint-duration law (required)")
	taskSpec := fs.String("task", "", "continuous task law")
	taskDiscSpec := fs.String("taskdisc", "", "discrete task law")
	preempt := fs.Bool("preempt", false, "validate the preemptible scenario instead")
	campaign := fs.Bool("campaign", false, "run a multi-reservation campaign Monte-Carlo instead")
	totalWork := fs.Float64("totalwork", 500, "total application work for -campaign")
	benchJSON := fs.String("benchjson", "", "with -campaign: write a serial-vs-parallel benchmark snapshot to this JSON file")
	trials := fs.Int("trials", 100000, "Monte-Carlo trials")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = all CPUs)")
	recovery := fs.Float64("recovery", 0, "recovery time at reservation start")
	failRate := fs.Float64("failrate", 0, "fail-stop error rate inside the reservation (0 = failure-free)")
	faultSpec := fs.String("faults", "", "fault plan, e.g. 'crash=exp:0.02,ckptfail=0.05,revoke=uniform:0.1'")
	mtbf := fs.Float64("mtbf", 0, "shorthand for -faults 'crash=exp:1/MTBF' (exponential fail-stop crashes)")
	ckptFailP := fs.Float64("ckptfail", 0, "shorthand for -faults 'ckptfail=P' (Bernoulli checkpoint-commit failures)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget; the Monte-Carlo stops cleanly at the deadline and reports the trials completed")
	faultSweep := fs.String("faultsweep", "", "with -campaign: comma-separated MTBF grid; reruns the campaign at each MTBF and prints the lost-work/completion trade-off")
	checkpointPath := fs.String("checkpoint", "", "with -campaign: periodically snapshot run state to this file; an interrupted run can continue with -resume")
	checkpointInterval := fs.Duration("checkpoint-interval", 10*time.Second, "with -checkpoint: minimum interval between snapshots")
	resume := fs.Bool("resume", false, "with -checkpoint: restore completed blocks from the snapshot file and run only the missing ones")
	strategies := fs.String("strategies", "oracle,dynamic,static,threshold,pessimistic",
		"comma-separated strategies to compare")
	hist := fs.Bool("hist", false, "print an ASCII histogram of saved work for each strategy")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	progress := fs.Bool("progress", false, "print live trials/sec progress to stderr")
	metricsPath := fs.String("metrics", "", "write a JSON metrics snapshot (counters, histograms) to this file on exit")
	listenAddr := fs.String("listen", "", "serve live expvar metrics and pprof on this address (e.g. :6060)")
	tracePath := fs.String("trace", "", "stream sampled per-trial events (task ends, checkpoints, faults) to this JSONL file")
	traceEvery := fs.Int64("tracesample", 1000, "with -trace: record one trial in every N (<=1 traces all; sampling is by trial index, deterministic)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *r <= 0 {
		return errors.New("-R must be positive")
	}
	if *ckptSpec == "" {
		return errors.New("-ckpt is required")
	}
	ckpt, err := lawspec.Parse(*ckptSpec)
	if err != nil {
		return err
	}
	plan, err := reskit.ParseFaults(*faultSpec)
	if err != nil {
		return err
	}
	if *mtbf != 0 {
		if !(*mtbf > 0) {
			return errors.New("-mtbf must be positive")
		}
		crash, err := reskit.CrashExponential(1 / *mtbf)
		if err != nil {
			return err
		}
		if plan == nil {
			plan = &reskit.FaultPlan{}
		}
		plan.Crash = crash
	}
	if *ckptFailP != 0 {
		ckptModel, err := reskit.CkptFailBernoulli(*ckptFailP)
		if err != nil {
			return err
		}
		if plan == nil {
			plan = &reskit.FaultPlan{}
		}
		plan.Ckpt = ckptModel
	}
	if *checkpointPath != "" {
		if !*campaign {
			return errors.New("-checkpoint requires -campaign")
		}
		if *faultSweep != "" || *benchJSON != "" {
			return errors.New("-checkpoint is incompatible with -faultsweep and -benchjson")
		}
	}
	if *resume && *checkpointPath == "" {
		return errors.New("-resume requires -checkpoint")
	}
	// SIGINT/SIGTERM cancel the context: workers drain at the next block
	// boundary, partial aggregates are reported exactly, and (with
	// -checkpoint) a final snapshot lands on disk before the process exits
	// with the distinct "interrupted but resumable" code.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	ctx := sigCtx
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// The interrupted exit code must fire even when the mode function
	// finishes its partial report cleanly, so the signal check wraps every
	// successful return below.
	defer func() {
		if err == nil && sigCtx.Err() != nil {
			err = errInterrupted
		}
	}()
	if *cpuProfile != "" {
		stop, err := startCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if werr := writeMemProfile(*memProfile); werr != nil && err == nil {
				err = werr
			}
		}()
	}
	// A single Monte-Carlo (campaign mode) has a known trial total for the
	// progress ETA; the workflow mode runs one Monte-Carlo per strategy, so
	// progress renders counts and rate without a percentage.
	progressTotal := int64(0)
	if *campaign && *faultSweep == "" && *benchJSON == "" {
		progressTotal = int64(*trials)
	}
	ob, err := setupObs(out, *progress, *metricsPath, *listenAddr, *tracePath, *traceEvery, *r, progressTotal)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := ob.finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	if *campaign {
		// The fingerprint ties a snapshot to the configuration facets that
		// shape the result. Workers are deliberately excluded: resuming
		// with a different worker count is legal and still bit-identical.
		ck := ckptOpts{
			path:     *checkpointPath,
			interval: *checkpointInterval,
			resume:   *resume,
			fingerprint: reskit.ConfigFingerprint(
				"campaign",
				fmt.Sprintf("R=%g", *r),
				fmt.Sprintf("recovery=%g", *recovery),
				"task="+*taskSpec,
				"taskdisc="+*taskDiscSpec,
				"ckpt="+*ckptSpec,
				fmt.Sprintf("totalwork=%g", *totalWork),
				fmt.Sprintf("faults=%v", plan),
				fmt.Sprintf("trials=%d", *trials),
				fmt.Sprintf("seed=%d", *seed),
			),
		}
		return runCampaignMode(ctx, out, *r, *recovery, *totalWork, *taskSpec, *taskDiscSpec,
			ckpt, *trials, *seed, *workers, *benchJSON, plan, *faultSweep, ck, ob)
	}
	if *faultSweep != "" {
		return errors.New("-faultsweep requires -campaign")
	}
	if *preempt {
		return runPreempt(out, *r, ckpt, *trials, *seed, *workers)
	}
	return runWorkflow(ctx, out, *r, *recovery, *failRate, *taskSpec, *taskDiscSpec, ckpt, *trials, *seed, *workers, *strategies, *hist, plan, ob)
}

func runPreempt(out io.Writer, r float64, ckpt reskit.Continuous, trials int, seed uint64, workers int) error {
	p, err := reskit.TryNewPreemptible(r, ckpt)
	if err != nil {
		return err
	}
	sol := p.OptimalX()
	pess := p.Pessimistic()
	fmt.Fprintf(out, "preemptible: R=%g, C ~ %v, %d trials\n\n", r, ckpt, trials)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "policy\tX\tanalytic E(W)\tsimulated E(W)\t±95%%\tsuccess\n")
	for _, row := range []struct {
		name string
		x    float64
		want float64
	}{
		{"optimal", sol.X, sol.ExpectedWork},
		{"pessimistic", pess.X, pess.ExpectedWork},
	} {
		agg := reskit.MonteCarloPreemptible(p, row.x, trials, seed, workers)
		fmt.Fprintf(tw, "%s\t%.4g\t%.5g\t%.5g\t%.2g\t%.3f\n",
			row.name, row.x, row.want, agg.Work.Mean(), agg.Work.CI95(), agg.SuccessRate())
	}
	oracle := reskit.MonteCarloPreemptibleOracle(p, trials, seed, workers)
	fmt.Fprintf(tw, "oracle\t-\t%.5g\t%.5g\t%.2g\t%.3f\n",
		r-ckpt.Mean(), oracle.Work.Mean(), oracle.Work.CI95(), oracle.SuccessRate())
	return tw.Flush()
}

func runWorkflow(ctx context.Context, out io.Writer, r, recovery, failRate float64, taskSpec, taskDiscSpec string, ckpt reskit.Continuous,
	trials int, seed uint64, workers int, strategyList string, hist bool, plan *reskit.FaultPlan, ob *simObs) error {

	base := reskit.SimConfig{R: r, Recovery: recovery, Ckpt: ckpt, FailureRate: failRate, Faults: plan}
	ob.attach(&base)
	if plan.Active() {
		fmt.Fprintf(out, "faults: %v\n", plan)
	}
	var taskMeanLaw interface {
		Mean() float64
		Quantile(float64) float64
	}
	var static *reskit.Static
	var dynamic *reskit.Dynamic
	switch {
	case taskSpec != "":
		law, err := lawspec.Parse(taskSpec)
		if err != nil {
			return err
		}
		base.Task = law
		taskMeanLaw = law
		if dynamic, err = reskit.TryNewDynamic(r, law, ckpt); err != nil {
			return err
		}
		if s, ok := law.(reskit.Summable); ok {
			static, err = reskit.TryNewStatic(r, s, ckpt)
		} else {
			// Truncated laws are not Summable; approximate the static
			// problem with a Normal matching the first two moments.
			static, err = reskit.TryNewStatic(r, reskit.Normal(law.Mean(), math.Sqrt(law.Variance())), ckpt)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "workflow: R=%g, X ~ %v, C ~ %v, %d trials\n\n", r, law, ckpt, trials)
	case taskDiscSpec != "":
		law, err := lawspec.ParseDiscrete(taskDiscSpec)
		if err != nil {
			return err
		}
		base.TaskDisc = law
		if dynamic, err = reskit.TryNewDynamicDiscrete(r, law, ckpt); err != nil {
			return err
		}
		if s, ok := law.(reskit.SummableDiscrete); ok {
			if static, err = reskit.TryNewStaticDiscrete(r, s, ckpt); err != nil {
				return err
			}
		} else {
			return fmt.Errorf("discrete law %v does not support the static strategy", law)
		}
		taskMeanLaw = poissonQuantiler{law}
		fmt.Fprintf(out, "workflow: R=%g, X ~ %v (discrete), C ~ %v, %d trials\n\n", r, law, ckpt, trials)
	default:
		return errors.New("-task or -taskdisc is required (or use -preempt)")
	}

	sol := static.Optimize()
	wInt, wErr := dynamic.Intersection()

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	faulty := plan.Active()
	if faulty {
		fmt.Fprintf(tw, "strategy\tE(saved)\t±95%%\tE(tasks)\tE(ckpts)\tE(ckptfaults)\tE(crashes)\trevoked\tzero-runs\n")
	} else {
		fmt.Fprintf(tw, "strategy\tE(saved)\t±95%%\tE(tasks)\tE(ckpts)\tzero-runs\n")
	}
	var interrupted error
	for _, name := range strings.Split(strategyList, ",") {
		name = strings.TrimSpace(name)
		cfg := base
		var agg reskit.SimAggregate
		var mcErr error
		switch name {
		case "oracle":
			cfg.Strategy = reskit.NeverStrategy()
			agg = reskit.MonteCarloOracle(cfg, trials, seed, workers)
		case "dynamic":
			cfg.Strategy = ob.counted(reskit.DynamicStrategy(dynamic))
			agg, mcErr = reskit.MonteCarloContext(ctx, cfg, trials, seed, workers)
		case "static":
			cfg.Strategy = ob.counted(reskit.StaticStrategy(sol.NOpt))
			agg, mcErr = reskit.MonteCarloContext(ctx, cfg, trials, seed, workers)
		case "threshold":
			if wErr != nil {
				fmt.Fprintf(tw, "%s\t(no intersection)\n", name)
				continue
			}
			cfg.Strategy = ob.counted(reskit.ThresholdStrategy(wInt))
			agg, mcErr = reskit.MonteCarloContext(ctx, cfg, trials, seed, workers)
		case "pessimistic":
			pess, perr := reskit.TryPessimisticStrategy(
				taskMeanLaw.Quantile(0.9999), ckpt.Quantile(0.9999))
			if perr != nil {
				return perr
			}
			cfg.Strategy = ob.counted(pess)
			agg, mcErr = reskit.MonteCarloContext(ctx, cfg, trials, seed, workers)
		case "never":
			cfg.Strategy = ob.counted(reskit.NeverStrategy())
			agg, mcErr = reskit.MonteCarloContext(ctx, cfg, trials, seed, workers)
		case "youngdaly":
			if failRate <= 0 {
				fmt.Fprintf(tw, "%s\t(needs -failrate > 0)\n", name)
				continue
			}
			cfg.Strategy = ob.counted(reskit.YoungDalyStrategy(1/failRate, ckpt.Mean()))
			cfg.After = reskit.ContinueExecution
			agg, mcErr = reskit.MonteCarloContext(ctx, cfg, trials, seed, workers)
		default:
			return fmt.Errorf("unknown strategy %q", name)
		}
		if agg.Trials > 0 {
			zeroPct := 100 * float64(agg.ZeroRuns) / float64(agg.Trials)
			if faulty {
				fmt.Fprintf(tw, "%s\t%.5g\t%.2g\t%.4g\t%.3g\t%.3g\t%.3g\t%.2f%%\t%.2f%%\n",
					name, agg.Saved.Mean(), agg.Saved.CI95(), agg.Tasks.Mean(), agg.Checkpoints.Mean(),
					agg.CkptFaults.Mean(), agg.Failures.Mean(),
					100*float64(agg.RevokedRuns)/float64(agg.Trials), zeroPct)
			} else {
				fmt.Fprintf(tw, "%s\t%.5g\t%.2g\t%.4g\t%.3g\t%.2f%%\n",
					name, agg.Saved.Mean(), agg.Saved.CI95(), agg.Tasks.Mean(), agg.Checkpoints.Mean(), zeroPct)
			}
		}
		if mcErr != nil {
			interrupted = mcErr
			fmt.Fprintf(tw, "%s\t(stopped by -timeout after %d/%d trials)\n", name, agg.Trials, trials)
			break
		}
		if hist {
			if err := printHistogram(tw, name, cfg, trials, seed, r); err != nil {
				return err
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if interrupted != nil {
		fmt.Fprintf(out, "\nwall-clock budget hit (%v); remaining strategies skipped\n", interrupted)
		return nil
	}
	fmt.Fprintf(out, "\nstatic n_opt = %d (E = %.5g analytic)\n", sol.NOpt, sol.ENOpt)
	if wErr == nil {
		fmt.Fprintf(out, "dynamic W_int = %.5g\n", wInt)
	}
	return nil
}

// printHistogram re-runs a small sample of reservations and renders the
// saved-work distribution as a 40-column ASCII bar chart.
func printHistogram(out io.Writer, name string, cfg reskit.SimConfig, trials int, seed uint64, rMax float64) error {
	n := trials
	if n > 5000 {
		n = 5000
	}
	h := stats.NewHistogram(0, rMax, 10)
	src := reskit.NewRNGStream(seed, 999)
	for i := 0; i < n; i++ {
		h.Add(reskit.Simulate(cfg, src).Saved)
	}
	peak := int64(1)
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	w := rMax / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("#", int(40*c/peak))
		fmt.Fprintf(out, "  [%5.1f-%5.1f)\t%s %d\n", float64(i)*w, float64(i+1)*w, bar, c)
	}
	return nil
}

// poissonQuantiler adapts a discrete law to the Quantile interface used
// for the pessimistic bound.
type poissonQuantiler struct{ d reskit.Discrete }

func (p poissonQuantiler) Mean() float64 { return p.d.Mean() }

func (p poissonQuantiler) Quantile(q float64) float64 {
	return float64(dist.DiscreteQuantile(p.d, q))
}
