package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reskit"
)

// campaignArgs is the fixed campaign configuration shared by the
// checkpoint CLI tests; every invocation must produce bit-identical
// aggregates, interrupted or not.
func campaignArgs(extra ...string) []string {
	args := []string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "150", "-trials", "60000", "-seed", "9",
	}
	return append(args, extra...)
}

// campaignResultLines strips the output down to the aggregate lines —
// everything except wall time (which legitimately differs across runs)
// and the resume/interrupted status lines.
func campaignResultLines(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "mean ") || strings.HasPrefix(line, "completion rate") ||
			strings.HasPrefix(line, "all completed") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}

func TestCheckpointFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"resume without checkpoint",
			campaignArgs("-resume"),
			"-resume requires -checkpoint"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, &bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestCampaignCheckpointTimeoutResume interrupts a checkpointed campaign
// in-process via -timeout, then resumes it and requires the aggregate
// lines bit-identical to an uninterrupted reference run.
func TestCampaignCheckpointTimeoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")

	var ref bytes.Buffer
	if err := run(campaignArgs(), &ref); err != nil {
		t.Fatal(err)
	}

	var interrupted bytes.Buffer
	if err := run(campaignArgs("-checkpoint", path, "-checkpoint-interval", "1ms", "-timeout", "300ms"),
		&interrupted); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(interrupted.String(), "rerun with -resume") {
		t.Skipf("campaign finished before the 300ms timeout; nothing to resume (output %q)", interrupted.String())
	}
	if _, err := reskit.LoadRunState(path); err != nil {
		t.Fatalf("snapshot after timeout is unusable: %v", err)
	}

	var resumed bytes.Buffer
	if err := run(campaignArgs("-checkpoint", path, "-resume"), &resumed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed.String(), "resume: restoring") {
		t.Errorf("resume did not restore blocks: %q", resumed.String())
	}
	if got, want := campaignResultLines(resumed.String()), campaignResultLines(ref.String()); got != want {
		t.Errorf("resumed aggregates differ from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("snapshot should be removed after a completed campaign (stat err %v)", err)
	}
}

// TestResumeMismatchedConfigStartsFresh changes the seed between the
// interrupted run and the resume; the fingerprint/seed gate must refuse
// the snapshot with a warning and still produce the right numbers.
func TestResumeMismatchedConfigStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	args := []string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "120", "-trials", "200",
	}
	if err := run(append(append([]string{}, args...), "-seed", "1", "-checkpoint", path, "-timeout", "1ns"),
		&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(append(append([]string{}, args...), "-seed", "2", "-checkpoint", path, "-resume"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "starting fresh") {
		t.Errorf("mismatched snapshot should trigger a fresh run, got %q", out.String())
	}
}

// TestResumeMissingSnapshotStartsFresh covers the first launch of a
// to-be-resumed pipeline: -resume with no snapshot yet just starts.
func TestResumeMissingSnapshotStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never-written.ckpt")
	var out bytes.Buffer
	err := run([]string{
		"-campaign", "-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-totalwork", "120", "-trials", "100", "-seed", "4",
		"-checkpoint", path, "-resume",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no usable snapshot") {
		t.Errorf("missing snapshot should be announced, got %q", out.String())
	}
}

// TestSigintLeavesResumableSnapshot is the end-to-end acceptance test of
// the durable-run tentpole: the real binary (the test executable
// re-executing main) runs a slow checkpointed campaign, receives SIGINT
// mid-flight, and must exit with the distinct "interrupted" code leaving
// a valid snapshot behind; resuming from that snapshot must reproduce
// the uninterrupted aggregates bit-for-bit.
func TestSigintLeavesResumableSnapshot(t *testing.T) {
	path := os.Getenv("SIMULATE_SIGINT_CKPT")
	if os.Getenv("SIMULATE_REEXEC") == "1" && path != "" {
		os.Args = append([]string{"simulate"},
			campaignArgs("-checkpoint", path, "-checkpoint-interval", "1ms")...)
		main()
		t.Fatal("main returned instead of exiting") // unreachable on success
	}

	path = filepath.Join(t.TempDir(), "run.ckpt")
	cmd := exec.Command(os.Args[0], "-test.run", "TestSigintLeavesResumableSnapshot")
	cmd.Env = append(os.Environ(), "SIMULATE_REEXEC=1", "SIMULATE_SIGINT_CKPT="+path)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Interrupt as soon as the first snapshot lands (the 1ms interval
	// makes that the first completed block).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no snapshot appeared within 30s (output %q)", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error after SIGINT, got %v (output %q)", err, out.String())
	}
	if code := ee.ExitCode(); code != exitInterrupted {
		t.Fatalf("exit code = %d, want %d (output %q)", code, exitInterrupted, out.String())
	}
	if !strings.Contains(out.String(), "rerun with -resume") {
		t.Errorf("interrupted run should point at -resume, got %q", out.String())
	}

	st, err := reskit.LoadRunState(path)
	if err != nil {
		t.Fatalf("snapshot left by SIGINT is unusable: %v", err)
	}
	if st.Done() == 0 {
		t.Fatal("snapshot recorded no completed blocks")
	}

	var ref, resumed bytes.Buffer
	if err := run(campaignArgs(), &ref); err != nil {
		t.Fatal(err)
	}
	if err := run(campaignArgs("-checkpoint", path, "-resume"), &resumed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed.String(), "resume: restoring") {
		t.Errorf("resume did not restore blocks: %q", resumed.String())
	}
	if got, want := campaignResultLines(resumed.String()), campaignResultLines(ref.String()); got != want {
		t.Errorf("post-SIGINT resume differs from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestAtomicOutputsLeaveNoTemp checks that the -metrics and -trace
// writers go through the atomic write path and leave no temporary
// droppings next to their destinations.
func TestAtomicOutputsLeaveNoTemp(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{
		"-R", "29", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-trials", "200", "-seed", "5", "-strategies", "dynamic",
		"-metrics", filepath.Join(dir, "m.json"),
		"-trace", filepath.Join(dir, "trace.jsonl"), "-tracesample", "50",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temporary file left behind: %s", e.Name())
		}
	}
	for _, want := range []string{"m.json", "trace.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing output %s (dir has %v)", want, names)
		}
	}
}
