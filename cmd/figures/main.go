// Command figures regenerates every figure of Barbut et al. (FTXS'23):
// it writes an SVG and a CSV per figure into -out, prints an ASCII
// rendition (with -ascii), and reports measured values next to the
// paper's reference values, exiting nonzero if any figure fails to
// reproduce within tolerance.
//
// Figures render as jobs of the shared run engine (internal/engine) —
// one job per figure, artifacts written atomically — so generation is
// parallel, -progress reports live per-figure progress, and -metrics
// snapshots the engine and quadrature counters.
//
//	figures -out out/figures
//	figures -only fig5,fig8 -ascii
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"reskit/internal/atomicio"
	"reskit/internal/engine"
	"reskit/internal/figures"
	"reskit/internal/obs"
	"reskit/internal/quad"
	"reskit/internal/rng"
)

func main() {
	outDir := flag.String("out", "out/figures", "directory for SVG and CSV output")
	only := flag.String("only", "", "comma-separated figure ids to restrict to (e.g. fig5,fig8)")
	ascii := flag.Bool("ascii", false, "also print ASCII renditions")
	extended := flag.Bool("extended", false, "also render the repository's extended ablation figures (ext1-ext4)")
	progress := flag.Bool("progress", false, "print live per-figure progress to stderr")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot (engine and quadrature counters) to this file on exit")
	flag.Parse()

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	failures, err := generateWith(context.Background(), *outDir, wanted, *ascii, *extended, os.Stdout,
		genOpts{progress: *progress, metricsPath: *metrics})
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d figure(s) failed\n", failures)
		os.Exit(1)
	}
}

// genOpts carries the observability flags into the generator.
type genOpts struct {
	progress    bool
	metricsPath string
}

// generate renders the selected figures into outDir, printing the
// paper-vs-measured report to out, and returns the number of figures
// that failed to reproduce.
func generate(outDir string, wanted map[string]bool, ascii, extended bool, out io.Writer) (failures int, err error) {
	return generateWith(context.Background(), outDir, wanted, ascii, extended, out, genOpts{})
}

// figPayload is one figure job's result: the per-figure report block
// (ASCII chart, value table, verdict) and whether the figure failed.
type figPayload struct {
	Output string `json:"output"`
	Failed bool   `json:"failed"`
}

// generateWith runs one engine job per selected figure. Each job builds
// its figure, renders SVG and CSV into artifacts (written atomically by
// the engine), and returns the report block as its payload; the blocks
// print in figure order afterwards, so the report reads identically for
// any worker count.
func generateWith(ctx context.Context, outDir string, wanted map[string]bool, ascii, extended bool,
	out io.Writer, o genOpts) (failures int, err error) {

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return 0, err
	}
	gens := figures.Generators()
	if extended {
		gens = append(gens, figures.ExtendedGenerators()...)
	}
	sel := gens[:0]
	for _, g := range gens {
		if len(wanted) > 0 && !wanted[g.ID] {
			continue
		}
		sel = append(sel, g)
	}

	var reg *obs.Registry
	if o.metricsPath != "" {
		reg = obs.NewRegistry()
		quad.ObserveEvals(reg.Counter("quad.evals"))
	}
	var prog *obs.Progress
	if o.progress {
		prog = obs.NewProgress(os.Stderr, "figures", int64(len(sel)), time.Second)
		prog.Start(ctx)
		defer prog.Stop()
	}

	jobs := make([]engine.Job, len(sel))
	for i := range sel {
		g := sel[i]
		jobs[i] = engine.Job{
			Name:   g.ID,
			Stream: uint64(i),
			Run: func(ctx context.Context, _ *rng.Source) (engine.JobResult, error) {
				fig := g.Make()
				var svg, csv, report bytes.Buffer
				if err := fig.Plot.SVG(&svg, 720, 440); err != nil {
					return engine.JobResult{}, err
				}
				if err := fig.Plot.CSV(&csv); err != nil {
					return engine.JobResult{}, err
				}
				if ascii {
					if err := fig.Plot.ASCII(&report, 76, 18); err != nil {
						return engine.JobResult{}, err
					}
				}
				fmt.Fprintf(&report, "%s  %s\n", fig.ID, fig.Title)
				for _, k := range fig.Keys() {
					fmt.Fprintf(&report, "    %-14s paper %-10.6g measured %-10.6g\n", k, fig.Reference[k], fig.Measured[k])
				}
				failed := false
				if bad := fig.Check(); len(bad) > 0 {
					for _, m := range bad {
						fmt.Fprintf(&report, "    MISMATCH: %s\n", m)
					}
					failed = true
				} else {
					fmt.Fprintf(&report, "    OK: reproduces within tolerance\n")
				}
				payload, err := json.Marshal(figPayload{Output: report.String(), Failed: failed})
				if err != nil {
					return engine.JobResult{}, err
				}
				return engine.JobResult{
					Payload: payload,
					Artifacts: []engine.Artifact{
						{Path: filepath.Join(outDir, fig.ID+".svg"), Data: svg.Bytes()},
						{Path: filepath.Join(outDir, fig.ID+".csv"), Data: csv.Bytes()},
					},
				}, nil
			},
		}
	}

	res, err := engine.Run(ctx, engine.Spec{Jobs: jobs, Log: out, Reg: reg, Progress: prog})
	if err != nil {
		return 0, err
	}
	for _, data := range res.Payloads {
		if data == nil {
			continue
		}
		var fp figPayload
		if err := json.Unmarshal(data, &fp); err != nil {
			return failures, err
		}
		if _, err := io.WriteString(out, fp.Output); err != nil {
			return failures, err
		}
		if fp.Failed {
			failures++
		}
	}
	if o.metricsPath != "" {
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			return failures, err
		}
		if err := atomicio.WriteFile(o.metricsPath, buf.Bytes(), 0o644); err != nil {
			return failures, fmt.Errorf("-metrics: %w", err)
		}
	}
	return failures, nil
}
