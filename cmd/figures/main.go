// Command figures regenerates every figure of Barbut et al. (FTXS'23):
// it writes an SVG and a CSV per figure into -out, prints an ASCII
// rendition (with -ascii), and reports measured values next to the
// paper's reference values, exiting nonzero if any figure fails to
// reproduce within tolerance.
//
//	figures -out out/figures
//	figures -only fig5,fig8 -ascii
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"reskit/internal/figures"
)

func main() {
	outDir := flag.String("out", "out/figures", "directory for SVG and CSV output")
	only := flag.String("only", "", "comma-separated figure ids to restrict to (e.g. fig5,fig8)")
	ascii := flag.Bool("ascii", false, "also print ASCII renditions")
	extended := flag.Bool("extended", false, "also render the repository's extended ablation figures (ext1-ext3)")
	flag.Parse()

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	failures, err := generate(*outDir, wanted, *ascii, *extended, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d figure(s) failed\n", failures)
		os.Exit(1)
	}
}

// generate renders the selected figures into outDir, printing the
// paper-vs-measured report to out, and returns the number of figures
// that failed to reproduce.
func generate(outDir string, wanted map[string]bool, ascii, extended bool, out io.Writer) (failures int, err error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return 0, err
	}
	figs := figures.All()
	if extended {
		figs = append(figs, figures.Extended()...)
	}
	for _, fig := range figs {
		if len(wanted) > 0 && !wanted[fig.ID] {
			continue
		}
		if err := render(&fig, outDir, ascii, out); err != nil {
			return failures, fmt.Errorf("%s: %w", fig.ID, err)
		}
		fmt.Fprintf(out, "%s  %s\n", fig.ID, fig.Title)
		for _, k := range fig.Keys() {
			fmt.Fprintf(out, "    %-14s paper %-10.6g measured %-10.6g\n", k, fig.Reference[k], fig.Measured[k])
		}
		if bad := fig.Check(); len(bad) > 0 {
			for _, m := range bad {
				fmt.Fprintf(out, "    MISMATCH: %s\n", m)
			}
			failures++
		} else {
			fmt.Fprintf(out, "    OK: reproduces within tolerance\n")
		}
	}
	return failures, nil
}

func render(fig *figures.Figure, outDir string, ascii bool, out io.Writer) error {
	svg, err := os.Create(filepath.Join(outDir, fig.ID+".svg"))
	if err != nil {
		return err
	}
	defer svg.Close()
	if err := fig.Plot.SVG(svg, 720, 440); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(outDir, fig.ID+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	if err := fig.Plot.CSV(csv); err != nil {
		return err
	}
	if ascii {
		if err := fig.Plot.ASCII(out, 76, 18); err != nil {
			return err
		}
	}
	return nil
}
