package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateSubset(t *testing.T) {
	dir := t.TempDir()
	var buf strings.Builder
	failures, err := generate(dir, map[string]bool{"fig1a": true, "fig9": true}, true, false, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures: %d\n%s", failures, buf.String())
	}
	for _, f := range []string{"fig1a.svg", "fig1a.csv", "fig9.svg", "fig9.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "fig5.svg")); err == nil {
		t.Errorf("fig5 should not have been generated")
	}
	out := buf.String()
	if !strings.Contains(out, "OK: reproduces within tolerance") {
		t.Errorf("missing OK lines:\n%s", out)
	}
	// -ascii renders the chart grid.
	if !strings.Contains(out, "|") {
		t.Errorf("missing ASCII chart:\n%s", out)
	}
}

func TestGenerateAllFiguresReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure regeneration in -short mode")
	}
	dir := t.TempDir()
	var buf strings.Builder
	failures, err := generate(dir, nil, false, false, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("%d figures failed:\n%s", failures, buf.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 28 { // 14 figures x (svg + csv)
		t.Errorf("expected 28 files, got %d", len(entries))
	}
}

func TestGenerateExtended(t *testing.T) {
	dir := t.TempDir()
	var buf strings.Builder
	failures, err := generate(dir, map[string]bool{"ext1": true, "ext3": true}, false, true, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures: %d\n%s", failures, buf.String())
	}
	for _, f := range []string{"ext1.svg", "ext3.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s", f)
		}
	}
}

func TestGenerateBadDir(t *testing.T) {
	var buf strings.Builder
	if _, err := generate("/proc/definitely/not/writable", nil, false, false, &buf); err == nil {
		t.Errorf("expected error for unwritable directory")
	}
}
