package main

import (
	"strings"
	"testing"
)

func TestPreemptMode(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-mode", "preempt", "-R", "10", "-ckpt", "uniform:1,7.5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"5.5", "uniform-closed-form", "interior", "1.246x"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPreemptBoundaryMessage(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-mode", "preempt", "-R", "10", "-ckpt", "uniform:1,5"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pessimistic strategy is optimal") {
		t.Errorf("boundary case not flagged:\n%s", buf.String())
	}
}

func TestStaticMode(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-mode", "static", "-R", "30",
		"-task", "norm:3,0.5", "-ckpt", "norm:5,0.4@[0,inf]"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n_opt:    7 tasks") {
		t.Errorf("Fig 5 n_opt missing:\n%s", buf.String())
	}
}

func TestStaticDiscreteMode(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-mode", "static", "-R", "29",
		"-taskdisc", "poisson:3", "-ckpt", "norm:5,0.4@[0,inf]"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n_opt:    6 tasks") {
		t.Errorf("Fig 7 n_opt missing:\n%s", buf.String())
	}
}

func TestDynamicMode(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-mode", "dynamic", "-R", "29",
		"-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "W_int: 20.2") {
		t.Errorf("Fig 8 W_int missing:\n%s", buf.String())
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{"-mode", "preempt"},                                                                          // missing R and ckpt
		{"-mode", "preempt", "-R", "10"},                                                              // missing ckpt
		{"-mode", "preempt", "-R", "10", "-ckpt", "bogus:1"},                                          // bad law
		{"-mode", "static", "-R", "10", "-ckpt", "norm:5,0.4@[0,inf]"},                                // no task
		{"-mode", "weird", "-R", "10", "-ckpt", "uniform:1,2"},                                        // bad mode
		{"-mode", "preempt", "-R", "10", "-ckpt", "norm:5,0.4"},                                       // infinite support
		{"-mode", "static", "-R", "10", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]"}, // not summable
	}
	for i, args := range cases {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestMultiMode(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-mode", "multi", "-R", "30",
		"-task", "gamma:1,3", "-ckpt", "norm:1,0.15@[0,inf]"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "single checkpoint") || !strings.Contains(out, "repeated checkpoints") {
		t.Errorf("multi output:\n%s", out)
	}
	if err := run([]string{"-mode", "multi", "-R", "30", "-ckpt", "norm:1,0.15@[0,inf]"}, &buf); err == nil {
		t.Errorf("multi without -task must fail")
	}
}
