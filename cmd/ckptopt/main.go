// Command ckptopt solves the checkpoint-placement problems of Barbut et
// al. (FTXS'23) from the command line.
//
// Preemptible scenario (Section 3): when should an application that can
// checkpoint at any instant start its final checkpoint?
//
//	ckptopt -mode preempt -R 10 -ckpt 'uniform:1,7.5'
//	ckptopt -mode preempt -R 10 -ckpt 'exp:0.5@[1,5]'
//
// Static strategy (Section 4.2): after how many IID stochastic tasks
// should the chain checkpoint?
//
//	ckptopt -mode static -R 30 -task 'norm:3,0.5' -ckpt 'norm:5,0.4@[0,inf]'
//	ckptopt -mode static -R 29 -taskdisc 'poisson:3' -ckpt 'norm:5,0.4@[0,inf]'
//
// Dynamic strategy (Section 4.3): above which accumulated work is
// checkpointing now better than running one more task?
//
//	ckptopt -mode dynamic -R 29 -task 'norm:3,0.5@[0,inf]' -ckpt 'norm:5,0.4@[0,inf]'
//
// See internal/lawspec for the distribution syntax.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"reskit"
	"reskit/internal/lawspec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ckptopt:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ckptopt", flag.ContinueOnError)
	mode := fs.String("mode", "preempt", "problem: preempt, static, dynamic or multi")
	r := fs.Float64("R", 0, "reservation length (required)")
	ckptSpec := fs.String("ckpt", "", "checkpoint-duration law (required)")
	taskSpec := fs.String("task", "", "continuous task-duration law (static/dynamic)")
	taskDiscSpec := fs.String("taskdisc", "", "discrete task-duration law (static/dynamic)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *r <= 0 {
		return errors.New("-R must be positive")
	}
	if *ckptSpec == "" {
		return errors.New("-ckpt is required")
	}
	ckpt, err := lawspec.Parse(*ckptSpec)
	if err != nil {
		return err
	}

	switch *mode {
	case "preempt":
		return solvePreempt(out, *r, ckpt)
	case "static":
		return solveStatic(out, *r, *taskSpec, *taskDiscSpec, ckpt)
	case "dynamic":
		return solveDynamic(out, *r, *taskSpec, *taskDiscSpec, ckpt)
	case "multi":
		return solveMulti(out, *r, *taskSpec, ckpt)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func solvePreempt(out io.Writer, r float64, ckpt reskit.Continuous) error {
	p, err := reskit.TryNewPreemptible(r, ckpt)
	if err != nil {
		return err
	}
	sol := p.OptimalX()
	pess := p.Pessimistic()
	a, b := p.Bounds()
	fmt.Fprintf(out, "preemptible problem: R=%g, C ~ %v (support [%g, %g])\n", r, ckpt, a, b)
	fmt.Fprintf(out, "  optimal:     checkpoint %.6g s before the end (method %s)\n", sol.X, sol.Method)
	fmt.Fprintf(out, "  E(W(X_opt)): %.6g\n", sol.ExpectedWork)
	fmt.Fprintf(out, "  pessimistic: X=b=%.6g with E(W)=%.6g\n", pess.X, pess.ExpectedWork)
	fmt.Fprintf(out, "  gain:        %.4gx over the pessimistic strategy\n", p.Gain())
	if sol.Interior {
		fmt.Fprintf(out, "  the optimum is interior: planning for the worst case wastes work\n")
	} else {
		fmt.Fprintf(out, "  the optimum is X=b: the pessimistic strategy is optimal here\n")
	}
	return nil
}

func solveStatic(out io.Writer, r float64, taskSpec, taskDiscSpec string, ckpt reskit.Continuous) error {
	var s *reskit.Static
	switch {
	case taskSpec != "":
		law, err := lawspec.Parse(taskSpec)
		if err != nil {
			return err
		}
		task, ok := law.(reskit.Summable)
		if !ok {
			return fmt.Errorf("task law %v does not support IID summation; use norm, gamma, exp or det", law)
		}
		if s, err = reskit.TryNewStatic(r, task, ckpt); err != nil {
			return err
		}
		fmt.Fprintf(out, "static problem: R=%g, X ~ %v, C ~ %v\n", r, law, ckpt)
	case taskDiscSpec != "":
		law, err := lawspec.ParseDiscrete(taskDiscSpec)
		if err != nil {
			return err
		}
		task, ok := law.(reskit.SummableDiscrete)
		if !ok {
			return fmt.Errorf("task law %v does not support IID summation", law)
		}
		if s, err = reskit.TryNewStaticDiscrete(r, task, ckpt); err != nil {
			return err
		}
		fmt.Fprintf(out, "static problem: R=%g, X ~ %v (discrete), C ~ %v\n", r, law, ckpt)
	default:
		return errors.New("static mode needs -task or -taskdisc")
	}
	sol := s.Optimize()
	fmt.Fprintf(out, "  y_opt:    %.6g (continuous relaxation maximum, E=%.6g)\n", sol.YOpt, sol.FOpt)
	fmt.Fprintf(out, "  n_opt:    %d tasks before the checkpoint\n", sol.NOpt)
	fmt.Fprintf(out, "  E(n_opt): %.6g expected saved work\n", sol.ENOpt)
	return nil
}

func solveDynamic(out io.Writer, r float64, taskSpec, taskDiscSpec string, ckpt reskit.Continuous) error {
	var d *reskit.Dynamic
	switch {
	case taskSpec != "":
		law, err := lawspec.Parse(taskSpec)
		if err != nil {
			return err
		}
		if d, err = reskit.TryNewDynamic(r, law, ckpt); err != nil {
			return err
		}
		fmt.Fprintf(out, "dynamic problem: R=%g, X ~ %v, C ~ %v\n", r, law, ckpt)
	case taskDiscSpec != "":
		law, err := lawspec.ParseDiscrete(taskDiscSpec)
		if err != nil {
			return err
		}
		if d, err = reskit.TryNewDynamicDiscrete(r, law, ckpt); err != nil {
			return err
		}
		fmt.Fprintf(out, "dynamic problem: R=%g, X ~ %v (discrete), C ~ %v\n", r, law, ckpt)
	default:
		return errors.New("dynamic mode needs -task or -taskdisc")
	}
	w, err := d.Intersection()
	if err != nil {
		return fmt.Errorf("no intersection: %w (checkpointing immediately is never/always better)", err)
	}
	fmt.Fprintf(out, "  W_int: %.6g\n", w)
	fmt.Fprintf(out, "  rule:  after each task, checkpoint as soon as the accumulated work W_n >= %.6g\n", w)
	return nil
}

// solveMulti compares the single-checkpoint DP optimum with the
// multi-checkpoint optimum (Section 4.4 made exact).
func solveMulti(out io.Writer, r float64, taskSpec string, ckpt reskit.Continuous) error {
	if taskSpec == "" {
		return errors.New("multi mode needs -task")
	}
	law, err := lawspec.Parse(taskSpec)
	if err != nil {
		return err
	}
	dp, err := reskit.TryNewDP(r, law, ckpt, 2048)
	if err != nil {
		return err
	}
	mdp, err := reskit.TryNewMultiDP(r, law, ckpt, 512)
	if err != nil {
		return err
	}
	single := dp.Solve()
	multi := mdp.Solve()
	fmt.Fprintf(out, "multi-checkpoint problem: R=%g, X ~ %v, C ~ %v\n", r, law, ckpt)
	fmt.Fprintf(out, "  single checkpoint (DP optimum):   %.6g expected committed work\n", single.Value)
	fmt.Fprintf(out, "  repeated checkpoints (2-D DP):    %.6g expected committed work\n", multi.Value)
	gain := 0.0
	if single.Value > 0 {
		gain = 100 * (multi.Value/single.Value - 1)
	}
	fmt.Fprintf(out, "  value of re-checkpointing (§4.4): %+.2f%%\n", gain)
	return nil
}
