package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"reskit"
	"reskit/internal/engine"
	"reskit/internal/lawspec"
	"reskit/internal/sim"
)

// campaignArgs is the shared flag set of the end-to-end test run —
// identical for coordinator and workers, as the protocol demands.
var campaignArgs = []string{
	"-R", "60", "-task", "exp:0.05", "-ckpt", "uniform:1,3",
	"-totalwork", "120", "-trials", "1280", "-seed", "7",
}

// localAggregate computes the reference aggregate through the local
// engine, exactly as simulate's campaign mode would.
func localAggregate(t *testing.T) sim.CampaignAggregate {
	t.Helper()
	law, err := lawspec.Parse("uniform:1,3")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildCampaign(60, 0, 120, "exp:0.05", "", law, nil)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 1280
	n := sim.NumCampaignBlocks(trials)
	grid := sweepGrid{cfgs: []reskit.CampaignConfig{cfg}, trials: trials, numBlocks: n}
	jobs := make([]engine.Job, n)
	for i := range jobs {
		jobs[i] = grid.job(i)
	}
	res, err := engine.Run(context.Background(), engine.Spec{Jobs: jobs, Seed: 7})
	if err != nil {
		t.Fatalf("local reference: %v", err)
	}
	agg, err := sim.MergeCampaignPayloads(res.Payloads)
	if err != nil {
		t.Fatalf("local merge: %v", err)
	}
	return agg
}

// TestDistrunEndToEnd drives the real CLI: one coordinator (bound to a
// random port, address published through -addr-file), two workers, and
// a final aggregate that must match a local single-process run to the
// printed digit.
func TestDistrunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")

	var coOut bytes.Buffer
	coArgs := append([]string{}, campaignArgs...)
	coArgs = append(coArgs,
		"-listen", "127.0.0.1:0", "-addr-file", addrFile,
		"-checkpoint", filepath.Join(dir, "run.ckpt"), "-checkpoint-interval", "10ms",
		"-lease-ttl", "2s", "-target-lease", "20ms",
	)
	coErr := make(chan error, 1)
	go func() { coErr <- run(coArgs, &coOut) }()

	// The coordinator publishes its bound address once listening.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never published its address; output so far:\n%s", coOut.String())
		}
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	var wg sync.WaitGroup
	werrs := make([]error, 2)
	for w := range werrs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wArgs := append([]string{}, campaignArgs...)
			wArgs = append(wArgs, "-worker", "http://"+addr, "-name", fmt.Sprintf("w%d", w), "-workers", "2")
			var wOut bytes.Buffer
			werrs[w] = run(wArgs, &wOut)
		}(w)
	}
	wg.Wait()
	for w, werr := range werrs {
		if werr != nil {
			t.Errorf("worker %d: %v", w, werr)
		}
	}
	select {
	case err := <-coErr:
		if err != nil {
			t.Fatalf("coordinator: %v\noutput:\n%s", err, coOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator never finished; output:\n%s", coOut.String())
	}

	// The printed aggregate must carry the local run's exact numbers.
	want := localAggregate(t)
	out := coOut.String()
	for what, v := range map[string]float64{
		"mean utilization": want.Utilization,
		"mean lost work":   want.LostWork,
	} {
		if !strings.Contains(out, fmt.Sprintf("%.4g", v)) {
			t.Errorf("coordinator output lacks the local run's %s %.4g:\n%s", what, v, out)
		}
	}
	if !strings.Contains(out, "all completed") {
		t.Errorf("coordinator output lacks the aggregate table:\n%s", out)
	}
	// A fully completed run retires its snapshot generations.
	if _, err := os.Stat(filepath.Join(dir, "run.ckpt")); !os.IsNotExist(err) {
		t.Errorf("completed run left its snapshot behind (stat err: %v)", err)
	}
}

// TestDistrunFaultSweepMatchesSimulate distributes a -faultsweep grid
// through the real CLI (coordinator plus one worker) and checks the
// printed per-row aggregates against a local engine run of the very job
// grid simulate -campaign -faultsweep builds — same sweep configs, same
// block payload functions, same row-major merge — so the two CLIs are
// pinned to bit-identical sweep results.
func TestDistrunFaultSweepMatchesSimulate(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	sweepArgs := append([]string{}, campaignArgs...)
	sweepArgs = append(sweepArgs, "-faultsweep", "30,60")

	var coOut bytes.Buffer
	coArgs := append([]string{}, sweepArgs...)
	coArgs = append(coArgs, "-listen", "127.0.0.1:0", "-addr-file", addrFile,
		"-lease-ttl", "2s", "-target-lease", "20ms")
	coErr := make(chan error, 1)
	go func() { coErr <- run(coArgs, &coOut) }()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never published its address; output so far:\n%s", coOut.String())
		}
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	wArgs := append([]string{}, sweepArgs...)
	wArgs = append(wArgs, "-worker", "http://"+addr, "-workers", "2")
	var wOut bytes.Buffer
	if werr := run(wArgs, &wOut); werr != nil {
		t.Errorf("worker: %v", werr)
	}
	select {
	case err := <-coErr:
		if err != nil {
			t.Fatalf("coordinator: %v\noutput:\n%s", err, coOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator never finished; output:\n%s", coOut.String())
	}

	// Local reference: the identical grid simulate's runFaultSweep lays
	// out, run through the in-process engine.
	law, err := lawspec.Parse("uniform:1,3")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildCampaign(60, 0, 120, "exp:0.05", "", law, nil)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 1280
	mtbfs, cfgs, err := sim.FaultSweepConfigs(cfg, "30,60")
	if err != nil {
		t.Fatal(err)
	}
	n := sim.NumCampaignBlocks(trials)
	grid := sweepGrid{cfgs: cfgs, mtbfs: mtbfs, trials: trials, numBlocks: n}
	jobs := make([]engine.Job, len(cfgs)*n)
	for i := range jobs {
		jobs[i] = grid.job(i)
	}
	res, err := engine.Run(context.Background(), engine.Spec{Jobs: jobs, Seed: 7})
	if err != nil {
		t.Fatalf("local reference: %v", err)
	}
	out := coOut.String()
	if !strings.Contains(out, "MTBF") {
		t.Fatalf("coordinator output lacks the sweep table:\n%s", out)
	}
	for ri, m := range mtbfs {
		agg, merr := sim.MergeCampaignPayloads(res.Payloads[ri*n : (ri+1)*n])
		if merr != nil {
			t.Fatalf("local merge row %d: %v", ri, merr)
		}
		for what, v := range map[string]float64{
			"lost work":   agg.LostWork,
			"utilization": agg.Utilization,
			"crashes":     agg.Crashes,
		} {
			if !strings.Contains(out, fmt.Sprintf("%.4g", v)) {
				t.Errorf("sweep row mtbf=%g: output lacks local %s %.4g:\n%s", m, what, v, out)
			}
		}
	}
}

// TestDistrunFlagValidation: the CLI refuses contradictory or missing
// flags before touching the network.
func TestDistrunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing R", []string{"-ckpt", "uniform:1,3", "-task", "exp:0.05"}, "-R must be positive"},
		{"missing ckpt", []string{"-R", "60", "-task", "exp:0.05"}, "-ckpt is required"},
		{"missing law", []string{"-R", "60", "-ckpt", "uniform:1,3"}, "-task or -taskdisc"},
		{"resume without checkpoint", []string{"-R", "60", "-ckpt", "uniform:1,3", "-task", "exp:0.05", "-resume"}, "-resume requires -checkpoint"},
		{"bad mtbf", []string{"-R", "60", "-ckpt", "uniform:1,3", "-task", "exp:0.05", "-mtbf", "-3"}, "-mtbf must be positive"},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		err := run(tc.args, &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestDistrunFingerprintMatchesSimulate pins the fingerprint parts to
// the ones cmd/simulate's campaign mode hashes: if this breaks,
// snapshots and workers stop being interchangeable between the two
// CLIs.
func TestDistrunFingerprintMatchesSimulate(t *testing.T) {
	got := reskit.ConfigFingerprint(
		"campaign",
		fmt.Sprintf("R=%g", 60.0),
		fmt.Sprintf("recovery=%g", 0.0),
		"task=exp:0.05",
		"taskdisc=",
		"ckpt=uniform:1,3",
		fmt.Sprintf("totalwork=%g", 120.0),
		fmt.Sprintf("faults=%v", (*reskit.FaultPlan)(nil)),
		fmt.Sprintf("trials=%d", 1280),
		fmt.Sprintf("seed=%d", 7),
	)
	// Recompute through the same helper the CLI uses — guarding against
	// a drive-by reordering of the parts in either place.
	want := reskit.ConfigFingerprint(
		"campaign", "R=60", "recovery=0", "task=exp:0.05", "taskdisc=",
		"ckpt=uniform:1,3", "totalwork=120", "faults=no faults", "trials=1280", "seed=7",
	)
	if got != want {
		t.Fatalf("fingerprint parts drifted: %016x != %016x", got, want)
	}
}
