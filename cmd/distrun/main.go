// Command distrun runs the campaign Monte-Carlo of cmd/simulate across
// machines: one coordinator process owns the job ledger and the durable
// snapshot, any number of worker processes lease blocks over HTTP and
// stream payloads back. The merged aggregate is bit-identical to a
// single-process `simulate -campaign` run of the same flags — and the
// two sides share snapshot files: a distributed run interrupted midway
// can be finished locally with `simulate -campaign -resume`, and vice
// versa, because both compute the identical configuration fingerprint.
//
// Coordinator:
//
//	distrun -R 60 -task exp:0.02 -ckpt uniform:5 -totalwork 500 \
//	        -trials 200000 -listen :8080 -checkpoint run.ckpt
//
// Workers (same campaign flags, plus the coordinator's address):
//
//	distrun -R 60 -task exp:0.02 -ckpt uniform:5 -totalwork 500 \
//	        -trials 200000 -worker http://coord:8080
//
// Exit codes follow cmd/simulate: 0 success, 1 failure, 3 interrupted
// by a signal (resumable), 4 completed degraded under -keep-going.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"reskit"
	"reskit/internal/distrun"
	"reskit/internal/engine"
	"reskit/internal/httpd"
	"reskit/internal/lawspec"
	"reskit/internal/obs"
	"reskit/internal/rng"
	"reskit/internal/sim"
)

// Exit codes shared with cmd/simulate.
const (
	exitInterrupted = 3
	exitDegraded    = 4
)

var (
	errInterrupted = errors.New("interrupted by signal; the run is resumable")
	errDegraded    = errors.New("completed degraded: some jobs failed permanently")
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distrun:", err)
		if errors.Is(err, errInterrupted) {
			os.Exit(exitInterrupted)
		}
		if errors.Is(err, errDegraded) {
			os.Exit(exitDegraded)
		}
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("distrun", flag.ContinueOnError)
	// Campaign configuration — must be identical on coordinator and
	// workers; it is hashed into the run fingerprint that the protocol
	// verifies on every message.
	r := fs.Float64("R", 0, "reservation length (required)")
	ckptSpec := fs.String("ckpt", "", "checkpoint-duration law (required)")
	taskSpec := fs.String("task", "", "continuous task law")
	taskDiscSpec := fs.String("taskdisc", "", "discrete task law")
	recovery := fs.Float64("recovery", 0, "recovery time at reservation start")
	totalWork := fs.Float64("totalwork", 500, "total application work of the campaign")
	trials := fs.Int("trials", 100000, "Monte-Carlo trials")
	seed := fs.Uint64("seed", 1, "random seed")
	faultSpec := fs.String("faults", "", "fault plan, e.g. 'crash=exp:0.02,ckptfail=0.05'")
	mtbf := fs.Float64("mtbf", 0, "shorthand for -faults 'crash=exp:1/MTBF'")
	faultSweep := fs.String("faultsweep", "", "comma-separated MTBF grid; distributes the sweep of simulate -campaign -faultsweep (identical fingerprint, interchangeable snapshots)")

	// Worker mode.
	workerURL := fs.String("worker", "", "run as a worker against this coordinator URL (empty: run as the coordinator)")
	name := fs.String("name", "", "worker name in leases and metrics (default host:pid)")
	workers := fs.Int("workers", 0, "local parallelism within a leased batch (0 = all CPUs)")
	retries := fs.Int("retries", 2, "worker-local per-job retry budget for transient failures")
	retryBackoff := fs.Duration("retry-backoff", 0, "base of the deterministic retry backoff (default 100ms when -retries > 0)")
	jobTimeout := fs.Duration("job-timeout", 0, "deadline per job attempt; a timed-out attempt is retryable")

	// Coordinator mode.
	listen := fs.String("listen", "127.0.0.1:0", "coordinator listen address")
	addrFile := fs.String("addr-file", "", "write the bound coordinator address to this file (useful with -listen :0)")
	checkpointPath := fs.String("checkpoint", "", "snapshot run state to this file; interchangeable with simulate -campaign -checkpoint")
	checkpointInterval := fs.Duration("checkpoint-interval", 10*time.Second, "minimum interval between snapshots")
	resume := fs.Bool("resume", false, "restore completed blocks from -checkpoint before issuing leases")
	keepGoing := fs.Bool("keep-going", false, "record permanently failed jobs and finish the rest; exits with code 4")
	jobAttempts := fs.Int("job-attempts", distrun.DefaultJobAttempts, "permanent failure reports per job before giving up")
	leaseTTL := fs.Duration("lease-ttl", distrun.DefaultLeaseTTL, "lease heartbeat deadline before requeue")
	targetLease := fs.Duration("target-lease", distrun.DefaultTargetLease, "target wall time per lease; batch sizes adapt to it")
	minLease := fs.Int("min-lease", 1, "minimum jobs per lease")
	maxLease := fs.Int("max-lease", distrun.DefaultMaxLease, "maximum jobs per lease")

	if err := fs.Parse(args); err != nil {
		return err
	}
	if *r <= 0 {
		return errors.New("-R must be positive")
	}
	if *ckptSpec == "" {
		return errors.New("-ckpt is required")
	}
	ckpt, err := lawspec.Parse(*ckptSpec)
	if err != nil {
		return err
	}
	plan, err := reskit.ParseFaults(*faultSpec)
	if err != nil {
		return err
	}
	if *mtbf != 0 {
		if !(*mtbf > 0) {
			return errors.New("-mtbf must be positive")
		}
		crash, cerr := reskit.CrashExponential(1 / *mtbf)
		if cerr != nil {
			return cerr
		}
		if plan == nil {
			plan = &reskit.FaultPlan{}
		}
		plan.Crash = crash
	}
	if *resume && *checkpointPath == "" {
		return errors.New("-resume requires -checkpoint")
	}
	cfg, err := buildCampaign(*r, *recovery, *totalWork, *taskSpec, *taskDiscSpec, ckpt, plan)
	if err != nil {
		return err
	}

	// The exact fingerprint parts of simulate's campaign (or campaign
	// fault-sweep) mode: a snapshot written here resumes there and vice
	// versa, and a worker launched with different flags is rejected by
	// the coordinator.
	mode := "campaign"
	if *faultSweep != "" {
		mode = "campaign faultsweep=" + *faultSweep
	}
	fp := reskit.ConfigFingerprint(
		mode,
		fmt.Sprintf("R=%g", *r),
		fmt.Sprintf("recovery=%g", *recovery),
		"task="+*taskSpec,
		"taskdisc="+*taskDiscSpec,
		"ckpt="+*ckptSpec,
		fmt.Sprintf("totalwork=%g", *totalWork),
		fmt.Sprintf("faults=%v", plan),
		fmt.Sprintf("trials=%d", *trials),
		fmt.Sprintf("seed=%d", *seed),
	)
	numBlocks := sim.NumCampaignBlocks(*trials)
	// The sweep grid is row-major over (MTBF row, block): the very job
	// layout of simulate's -faultsweep, so job i means the same work on
	// both sides. An empty sweep is a single implicit row — the plain
	// campaign.
	var (
		mtbfs []float64
		cfgs  []reskit.CampaignConfig
	)
	if *faultSweep != "" {
		if mtbfs, cfgs, err = sim.FaultSweepConfigs(cfg, *faultSweep); err != nil {
			return fmt.Errorf("-faultsweep: %w", err)
		}
	} else {
		cfgs = []reskit.CampaignConfig{cfg}
	}
	numJobs := len(cfgs) * numBlocks

	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	defer func() {
		if err == nil && sigCtx.Err() != nil {
			err = errInterrupted
		}
	}()

	grid := sweepGrid{cfgs: cfgs, mtbfs: mtbfs, trials: *trials, numBlocks: numBlocks}
	if *workerURL != "" {
		return runWorker(sigCtx, out, *workerURL, *name, grid, numJobs, *seed, fp,
			engine.Failure{Retries: *retries, Backoff: *retryBackoff, JobTimeout: *jobTimeout}, *workers)
	}
	return runCoordinator(sigCtx, out, coordinatorOpts{
		listen: *listen, addrFile: *addrFile,
		checkpoint:  engine.Checkpoint{Path: *checkpointPath, Interval: *checkpointInterval, Resume: *resume},
		keepGoing:   *keepGoing,
		jobAttempts: *jobAttempts,
		leaseTTL:    *leaseTTL, targetLease: *targetLease, minLease: *minLease, maxLease: *maxLease,
	}, grid, numJobs, *seed, fp)
}

// sweepGrid is the job layout both distrun roles share: the campaign
// rows (one for a plain campaign, one per MTBF for -faultsweep), laid
// out row-major over (row, block). Job i simulates block i%numBlocks of
// row i/numBlocks — the identical layout, names and payload functions
// as simulate's -campaign/-faultsweep job grids.
type sweepGrid struct {
	cfgs      []reskit.CampaignConfig
	mtbfs     []float64 // nil for a plain campaign
	trials    int
	numBlocks int
}

// jobName renders job i's canonical name.
func (g sweepGrid) jobName(i int) string {
	if g.mtbfs != nil {
		return sim.FaultSweepJobName(g.mtbfs, g.numBlocks, i)
	}
	return fmt.Sprintf("block%d", i)
}

// job builds job i — the same Name, Stream and payload function as the
// corresponding simulate job.
func (g sweepGrid) job(i int) engine.Job {
	ri, b := i/g.numBlocks, i%g.numBlocks
	return engine.Job{
		Name:   g.jobName(i),
		Stream: uint64(b),
		Run: func(ctx context.Context, src *rng.Source) (engine.JobResult, error) {
			data, err := sim.CampaignBlockPayload(ctx, g.cfgs[ri], g.trials, b, src)
			return engine.JobResult{Payload: data}, err
		},
	}
}

// buildCampaign assembles the campaign exactly as simulate's campaign
// mode does, so the job payloads are the same pure functions.
func buildCampaign(r, recovery, totalWork float64, taskSpec, taskDiscSpec string,
	ckpt reskit.Continuous, plan *reskit.FaultPlan) (reskit.CampaignConfig, error) {

	if !(totalWork > 0) {
		return reskit.CampaignConfig{}, errors.New("-totalwork must be positive")
	}
	base := reskit.SimConfig{R: r, Recovery: recovery, Ckpt: ckpt, Faults: plan}
	switch {
	case taskSpec != "":
		law, err := lawspec.Parse(taskSpec)
		if err != nil {
			return reskit.CampaignConfig{}, err
		}
		dyn, err := reskit.TryNewDynamic(r, law, ckpt)
		if err != nil {
			return reskit.CampaignConfig{}, err
		}
		base.Task = law
		base.Strategy = reskit.DynamicStrategy(dyn)
	case taskDiscSpec != "":
		law, err := lawspec.ParseDiscrete(taskDiscSpec)
		if err != nil {
			return reskit.CampaignConfig{}, err
		}
		dyn, err := reskit.TryNewDynamicDiscrete(r, law, ckpt)
		if err != nil {
			return reskit.CampaignConfig{}, err
		}
		base.TaskDisc = law
		base.Strategy = reskit.DynamicStrategy(dyn)
	default:
		return reskit.CampaignConfig{}, errors.New("-task or -taskdisc is required")
	}
	cfg := reskit.CampaignConfig{Reservation: base, TotalWork: totalWork}
	if err := cfg.Validate(); err != nil {
		return reskit.CampaignConfig{}, err
	}
	return cfg, nil
}

type coordinatorOpts struct {
	listen, addrFile      string
	checkpoint            engine.Checkpoint
	keepGoing             bool
	jobAttempts           int
	leaseTTL, targetLease time.Duration
	minLease, maxLease    int
}

// runCoordinator serves the ledger until the run resolves, then prints
// the merged aggregate (complete runs) or the partial verdict.
func runCoordinator(ctx context.Context, out io.Writer, opts coordinatorOpts,
	grid sweepGrid, numJobs int, seed, fp uint64) error {

	reg := obs.NewRegistry()
	progress := obs.NewProgress(os.Stderr, "jobs", int64(numJobs), time.Second)
	co, err := distrun.NewCoordinator(distrun.CoordinatorConfig{
		NumJobs:     numJobs,
		Seed:        seed,
		Fingerprint: fp,
		Checkpoint:  opts.checkpoint,
		Check:       func(_ int, data []byte) error { return sim.CheckCampaignPayload(data) },
		JobName:     grid.jobName,
		JobAttempts: opts.jobAttempts,
		KeepGoing:   opts.keepGoing,
		LeaseTTL:    opts.leaseTTL,
		TargetLease: opts.targetLease,
		MinLease:    opts.minLease,
		MaxLease:    opts.maxLease,
		Log:         out,
		Reg:         reg,
		Progress:    progress,
	})
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/", co.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteProm(w, "reskit") //nolint:errcheck // client hung up
	})
	srv, err := httpd.Listen(opts.listen, mux)
	if err != nil {
		return err
	}
	defer srv.Shutdown(2 * time.Second)
	fmt.Fprintf(out, "distrun: coordinating %d jobs (%d trials) on %s\n", numJobs, grid.trials, srv.Addr())
	if opts.addrFile != "" {
		if werr := reskit.WriteFileAtomic(opts.addrFile, []byte(srv.Addr().String()+"\n"), 0o644); werr != nil {
			return werr
		}
	}

	start := time.Now()
	progress.Start(context.Background())
	res, runErr := co.Wait(ctx)
	progress.Stop()
	elapsed := time.Since(start)

	// Shutdown refuses new connections the moment it is called, so keep
	// serving for one more wait-retry cycle: workers parked in
	// StatusWait wake up, observe StatusDone, and exit cleanly instead
	// of dying on connection refused.
	if runErr == nil && ctx.Err() == nil {
		time.Sleep(2*distrun.DefaultWaitRetry + 100*time.Millisecond)
	}

	// A failure that is neither an interruption nor the keep-going
	// degradation is fatal: a job out of attempts without -keep-going,
	// an unusable restored payload, a dead snapshot disk.
	if runErr != nil && ctx.Err() == nil && len(res.Failed) == 0 {
		return runErr
	}
	st := co.Stats()
	if res.Done() == numJobs {
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		if grid.mtbfs != nil {
			// The same per-row trade-off table simulate's -faultsweep
			// prints, merged row by row from the row-major payload grid.
			fmt.Fprintf(tw, "MTBF\tE(lost)\tE(util)\tE(res)\tE(crashes)\tcompletion\n")
			for ri, m := range grid.mtbfs {
				agg, merr := sim.MergeCampaignPayloads(res.Payloads[ri*grid.numBlocks : (ri+1)*grid.numBlocks])
				if merr != nil {
					return merr
				}
				fmt.Fprintf(tw, "%g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\n",
					m, agg.LostWork, agg.Utilization, agg.Reservations, agg.Crashes, agg.CompletionRate)
			}
		} else {
			agg, merr := sim.MergeCampaignPayloads(res.Payloads)
			if merr != nil {
				return merr
			}
			fmt.Fprintf(tw, "mean reservations\t%.4g\n", agg.Reservations)
			fmt.Fprintf(tw, "mean utilization\t%.4g\n", agg.Utilization)
			fmt.Fprintf(tw, "mean lost work\t%.4g\n", agg.LostWork)
			fmt.Fprintf(tw, "completion rate\t%.4g\n", agg.CompletionRate)
			fmt.Fprintf(tw, "all completed\t%v\n", agg.CompletedAll)
		}
		fmt.Fprintf(tw, "wall time\t%v (%d workers seen)\n", elapsed.Round(time.Millisecond), st.Workers)
		if terr := tw.Flush(); terr != nil {
			return terr
		}
	} else {
		fmt.Fprintf(out, "distrun: %d/%d jobs done (%d restored) after %v\n",
			res.Done(), numJobs, res.Restored, elapsed.Round(time.Millisecond))
	}
	// Wait joins an engine.SnapshotError into its error when the final
	// snapshot flush failed — in that case the file on disk is stale and
	// must not be advertised as resumable.
	var snapErr *engine.SnapshotError
	flushFailed := errors.As(runErr, &snapErr)
	switch {
	case ctx.Err() != nil:
		if flushFailed {
			fmt.Fprintf(out, "checkpoint: final snapshot not persisted (%v); a resume replays work since the last good snapshot\n", snapErr.Err)
		} else if opts.checkpoint.Path != "" {
			fmt.Fprintf(out, "checkpoint: resumable snapshot at %s\n", opts.checkpoint.Path)
		}
		return errInterrupted
	case len(res.Failed) > 0:
		for _, fe := range res.Failed {
			fmt.Fprintf(out, "failed: %v\n", fe)
		}
		if flushFailed {
			fmt.Fprintf(out, "checkpoint: final snapshot not persisted (%v); a resume replays work since the last good snapshot\n", snapErr.Err)
		} else if opts.checkpoint.Path != "" {
			fmt.Fprintf(out, "checkpoint: failed jobs left out of %s; -resume retries exactly them\n", opts.checkpoint.Path)
		}
		return errDegraded
	}
	return nil
}

// runWorker joins the coordinator at url and executes leases until the
// run is over.
func runWorker(ctx context.Context, out io.Writer, url, name string, grid sweepGrid,
	numJobs int, seed, fp uint64, failure engine.Failure, workers int) error {

	err := distrun.RunWorker(ctx, distrun.WorkerConfig{
		URL:         url,
		Name:        name,
		NumJobs:     numJobs,
		Seed:        seed,
		Fingerprint: fp,
		Job:         grid.job,
		Failure:     failure,
		Workers:     workers,
		Log:         out,
	})
	if errors.Is(err, context.Canceled) && ctx.Err() != nil {
		return errInterrupted
	}
	return err
}
