// Command planres chooses the reservation length to request: it sweeps
// candidate lengths, runs deterministic Monte-Carlo campaigns of the
// whole application under the paper's dynamic strategy, and prints the
// cost/efficiency frontier.
//
//	planres -work 500 -task 'norm:3,0.5@[0,inf]' -ckpt 'norm:5,0.4@[0,inf]' \
//	        -recovery 1.5 -candidates 15,30,60,120 -wait 20
//
// The -wait flag models the scheduling cost of obtaining each
// reservation (longer reservations are harder to get; price them
// accordingly); -payperuse switches billing to machine time actually
// used (Section 4.4's charging model).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"reskit"
	"reskit/internal/lawspec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "planres:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("planres", flag.ContinueOnError)
	work := fs.Float64("work", 0, "total work to commit (required)")
	taskSpec := fs.String("task", "", "task-duration law (required)")
	ckptSpec := fs.String("ckpt", "", "checkpoint-duration law (required)")
	recovery := fs.Float64("recovery", 0, "recovery time per reservation after the first")
	wait := fs.Float64("wait", 0, "fixed cost per reservation (queue wait)")
	payPerUse := fs.Bool("payperuse", false, "bill time used instead of time reserved")
	candidatesStr := fs.String("candidates", "", "comma-separated reservation lengths (default: sweep)")
	trials := fs.Int("trials", 200, "Monte-Carlo campaigns per candidate")
	seed := fs.Uint64("seed", 1, "random seed (every value, including 0, is a distinct seed)")
	workers := fs.Int("workers", 0, "parallel workers (0: all CPUs; plan identical for any count)")
	progress := fs.Bool("progress", false, "print live sweep progress to stderr")
	metricsPath := fs.String("metrics", "", "write a JSON metrics snapshot (engine.* and planner.*) to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *work <= 0 {
		return errors.New("-work must be positive")
	}
	if *taskSpec == "" || *ckptSpec == "" {
		return errors.New("-task and -ckpt are required")
	}
	task, err := lawspec.Parse(*taskSpec)
	if err != nil {
		return err
	}
	ckpt, err := lawspec.Parse(*ckptSpec)
	if err != nil {
		return err
	}
	var candidates []float64
	if *candidatesStr != "" {
		for _, s := range strings.Split(*candidatesStr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad candidate %q: %w", s, err)
			}
			candidates = append(candidates, v)
		}
	}

	cfg := reskit.PlannerConfig{
		TotalWork:  *work,
		Task:       task,
		Ckpt:       ckpt,
		Recovery:   *recovery,
		Cost:       reskit.PlannerCostModel{PerReservation: *wait, PayPerUse: *payPerUse},
		Candidates: candidates,
		Trials:     *trials,
		Seed:       *seed,
		Workers:    *workers,
	}
	if *metricsPath != "" {
		cfg.Reg = reskit.NewObsRegistry()
	}
	if *progress {
		// With the default sweep the candidate count is chosen inside
		// the planner; total 0 renders counts without percentage/ETA.
		total := int64(len(candidates) * *trials)
		cfg.Progress = reskit.NewProgress(os.Stderr, "trials", total, time.Second)
		cfg.Progress.Start(context.Background())
	}
	opts, err := reskit.PlanReservationLength(cfg)
	cfg.Progress.Stop()
	if *metricsPath != "" {
		var buf bytes.Buffer
		merr := cfg.Reg.WriteJSON(&buf)
		if merr == nil {
			merr = reskit.WriteFileAtomic(*metricsPath, buf.Bytes(), 0o644)
		}
		if merr != nil && err == nil {
			err = fmt.Errorf("-metrics: %w", merr)
		}
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "plan: %g units of work, X ~ %v, C ~ %v, recovery %g, wait %g/reservation\n\n",
		*work, task, ckpt, *recovery, *wait)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "R\tcost\treservations\tutilization\twork/cost\tcompleted\n")
	for _, o := range opts {
		fmt.Fprintf(tw, "%.4g\t%.5g\t%.4g\t%.1f%%\t%.5g\t%v\n",
			o.R, o.Cost, o.Reservations, 100*o.Utilization, o.WorkPerCost, o.Completed)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nrecommended: R = %.4g\n", opts[0].R)
	return nil
}
