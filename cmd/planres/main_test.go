package main

import (
	"strings"
	"testing"
)

func TestPlanresFrontier(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-work", "200", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
		"-recovery", "1.5", "-candidates", "15,60", "-trials", "30",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "recommended: R = 60") {
		t.Errorf("R=60 should be recommended over 15:\n%s", out)
	}
	if !strings.Contains(out, "utilization") {
		t.Errorf("missing frontier header:\n%s", out)
	}
}

func TestPlanresWaitCostFlipsChoice(t *testing.T) {
	runWith := func(wait string) string {
		var buf strings.Builder
		err := run([]string{
			"-work", "300", "-task", "norm:3,0.5@[0,inf]", "-ckpt", "norm:5,0.4@[0,inf]",
			"-recovery", "1.5", "-candidates", "30,120", "-trials", "30", "-wait", wait,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	heavy := runWith("200")
	if !strings.Contains(heavy, "recommended: R = 120") {
		t.Errorf("heavy wait should favor long reservations:\n%s", heavy)
	}
}

func TestPlanresErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-work", "100"},
		{"-work", "100", "-task", "bogus", "-ckpt", "norm:5,0.4@[0,inf]"},
		{"-work", "100", "-task", "gamma:1,1", "-ckpt", "norm:5,0.4@[0,inf]", "-candidates", "10,abc"},
	}
	for i, args := range cases {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
