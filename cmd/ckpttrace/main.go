// Command ckpttrace closes the "learned from traces" loop of the paper's
// introduction: it generates synthetic checkpoint-duration traces,
// fits the paper's parametric families to a trace with AIC model
// selection, and solves the preemptible problem with the learned law.
//
// Generate a synthetic trace:
//
//	ckpttrace gen -law 'norm:5,0.4@[3,7]' -n 2000 -seed 1 -out ckpt.csv
//
// Fit a trace and report every family:
//
//	ckpttrace fit -in ckpt.csv
//
// Fit and solve the Section 3 problem with the learned D_C:
//
//	ckpttrace solve -in ckpt.csv -R 60
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"reskit"
	"reskit/internal/lawspec"
	"reskit/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "ckpttrace: usage: ckpttrace gen|fit|solve [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:], os.Stdout)
	case "fit":
		err = runFit(os.Args[2:], os.Stdout)
	case "solve":
		err = runSolve(os.Args[2:], os.Stdout)
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckpttrace:", err)
		os.Exit(1)
	}
}

func runGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	lawSpec := fs.String("law", "", "law to sample from (required)")
	n := fs.Int("n", 1000, "number of observations")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "", "output CSV file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *lawSpec == "" {
		return errors.New("-law is required")
	}
	law, err := lawspec.Parse(*lawSpec)
	if err != nil {
		return err
	}
	r := reskit.NewRNG(*seed)
	tr := trace.Trace{Name: *lawSpec}
	for i := 0; i < *n; i++ {
		if err := tr.Add(law.Sample(r)); err != nil {
			return err
		}
	}
	if *out == "" {
		return tr.WriteCSV(stdout)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteCSV(f)
}

func readTrace(path string) (*trace.Trace, error) {
	if path == "" {
		return trace.ReadCSV(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadCSV(f)
}

func runFit(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV trace (default stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	lo, hi := tr.Range()
	fmt.Fprintf(stdout, "trace %q: n=%d, range [%g, %g], mean %.5g\n\n", tr.Name, tr.Len(), lo, hi, tr.Mean())
	fits, err := trace.FitAll(tr)
	if err != nil {
		return err
	}
	for i, f := range fits {
		marker := " "
		if i == 0 {
			marker = "*"
		}
		fmt.Fprintf(stdout, "%s %s\n", marker, f)
	}
	fmt.Fprintln(stdout, "\n(* = selected by AIC)")
	return nil
}

func runSolve(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV trace (default stdin)")
	r := fs.Float64("R", 0, "reservation length (required)")
	a := fs.Float64("a", math.NaN(), "C_min (default: from trace)")
	b := fs.Float64("b", math.NaN(), "C_max (default: from trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *r <= 0 {
		return errors.New("-R must be positive")
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	law, fit, err := reskit.CheckpointLawFromTrace(tr, *a, *b)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "learned D_C: %v (family %s, AIC %.5g)\n", law, fit.Family, fit.AIC())
	p, err := reskit.TryNewPreemptible(*r, law)
	if err != nil {
		return err
	}
	sol := p.OptimalX()
	fmt.Fprintf(stdout, "R = %g: checkpoint %.5g s before the end (E(W) = %.5g, gain %.4gx over pessimistic)\n",
		*r, sol.X, sol.ExpectedWork, p.Gain())
	return nil
}
