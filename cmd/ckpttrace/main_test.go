package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestGenFitSolvePipeline(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "ckpt.csv")

	var buf strings.Builder
	if err := runGen([]string{"-law", "norm:5,0.4@[3,7]", "-n", "2000", "-seed", "1", "-out", csv}, &buf); err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if err := runFit([]string{"-in", csv}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "n=2000") || !strings.Contains(out, "selected by AIC") {
		t.Errorf("fit output:\n%s", out)
	}
	if !strings.Contains(out, "* normal") {
		t.Errorf("normal should win AIC on a truncated-normal sample:\n%s", out)
	}

	buf.Reset()
	if err := runSolve([]string{"-in", csv, "-R", "60"}, &buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "learned D_C") || !strings.Contains(out, "checkpoint") {
		t.Errorf("solve output:\n%s", out)
	}
}

func TestGenToStdout(t *testing.T) {
	var buf strings.Builder
	if err := runGen([]string{"-law", "uniform:1,2", "-n", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // header + 5 values
		t.Errorf("got %d lines:\n%s", len(lines), buf.String())
	}
}

func TestTraceCLIErrors(t *testing.T) {
	var buf strings.Builder
	if err := runGen([]string{}, &buf); err == nil {
		t.Errorf("gen without -law must fail")
	}
	if err := runGen([]string{"-law", "bogus:1"}, &buf); err == nil {
		t.Errorf("gen with bad law must fail")
	}
	if err := runFit([]string{"-in", "/nonexistent/file.csv"}, &buf); err == nil {
		t.Errorf("fit with missing file must fail")
	}
	if err := runSolve([]string{"-in", "/nonexistent/file.csv", "-R", "10"}, &buf); err == nil {
		t.Errorf("solve with missing file must fail")
	}
	dir := t.TempDir()
	csv := filepath.Join(dir, "t.csv")
	if err := runGen([]string{"-law", "uniform:1,2", "-n", "50", "-out", csv}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := runSolve([]string{"-in", csv}, &buf); err == nil {
		t.Errorf("solve without -R must fail")
	}
}
