// Command bench is the production-scale benchmark suite behind
// BENCH_suite.json: it runs every simulate mode (preemptible
// reservation, strategy-driven workflow, multi-reservation campaign)
// under normal- and gamma-law workloads, sweeps worker counts, times
// each cell with min-of-N repetitions (internal/benchkit), checks that
// aggregates are bit-identical across the worker sweep, and writes a
// versioned snapshot.
//
//	go run ./cmd/bench -out BENCH_suite.json            # refresh snapshot
//	go run ./cmd/bench -check -scale 0.01               # regression gate
//
// The -check mode re-runs the suite (typically scaled down) and diffs
// it against the committed snapshot with benchkit.Compare: ns/trial
// drift beyond BENCH_DRIFT_PCT, any new steady-state allocation, or a
// lost bit-identity flag exits non-zero. `make benchcheck` and the CI
// benchcheck job are thin wrappers around this mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"reskit"
	"reskit/internal/benchkit"
)

// workload is one named benchmark: a closure over a fixed configuration
// that runs `trials` trials on `workers` workers and returns the
// aggregate. Aggregates are plain comparable structs, so the cross-
// worker bit-identity check is a == over the boxed values.
type workload struct {
	name   string
	trials int64 // production trial count, scaled by -scale
	run    func(trials int64, workers int) any
}

// suiteSeed fixes the rng seed of every workload: the suite measures
// speed, and determinism means the bit-identity column is about worker
// sharding, not run-to-run luck.
const suiteSeed = 42

// buildWorkloads constructs the suite. Laws mirror the repository's
// canonical experiment configurations (Makefile benchjson, figure
// reproductions): reservation R=29 with a truncated-normal task
// (mu=3, sigma=0.5) or gamma task (k=6, theta=0.5), truncated-normal
// checkpoint law (mu=5, sigma=0.4), recovery 1.5, dynamic strategy.
func buildWorkloads() ([]workload, error) {
	normTask := reskit.Truncate(reskit.Normal(3, 0.5), 0, math.Inf(1))
	gammaTask := reskit.Truncate(reskit.Gamma(6, 0.5), 0, math.Inf(1))
	ckpt := reskit.Truncate(reskit.Normal(5, 0.4), 0, math.Inf(1))

	dynNorm, err := reskit.TryNewDynamic(29, normTask, ckpt)
	if err != nil {
		return nil, fmt.Errorf("norm dynamic strategy: %w", err)
	}
	dynGamma, err := reskit.TryNewDynamic(29, gammaTask, ckpt)
	if err != nil {
		return nil, fmt.Errorf("gamma dynamic strategy: %w", err)
	}

	wfCfg := func(task reskit.Continuous, dyn *reskit.Dynamic) reskit.SimConfig {
		return reskit.SimConfig{
			R:        29,
			Recovery: 1.5,
			Task:     task,
			Ckpt:     ckpt,
			Strategy: reskit.DynamicStrategy(dyn),
		}
	}
	campCfg := func(task reskit.Continuous, dyn *reskit.Dynamic) reskit.CampaignConfig {
		return reskit.CampaignConfig{
			Reservation: wfCfg(task, dyn),
			TotalWork:   100,
		}
	}

	preemptLaw := reskit.Truncate(reskit.Normal(300, 30), 60, 600)
	preempt := reskit.NewPreemptible(3600, preemptLaw)

	normWF, gammaWF := wfCfg(normTask, dynNorm), wfCfg(gammaTask, dynGamma)
	normCamp, gammaCamp := campCfg(normTask, dynNorm), campCfg(gammaTask, dynGamma)

	return []workload{
		{
			name:   "preempt",
			trials: 10_000_000,
			run: func(trials int64, workers int) any {
				return reskit.MonteCarloPreemptible(preempt, 360, int(trials), suiteSeed, workers)
			},
		},
		{
			name:   "workflow/dynamic-norm",
			trials: 1_000_000,
			run: func(trials int64, workers int) any {
				return reskit.MonteCarlo(normWF, int(trials), suiteSeed, workers)
			},
		},
		{
			name:   "workflow/dynamic-gamma",
			trials: 1_000_000,
			run: func(trials int64, workers int) any {
				return reskit.MonteCarlo(gammaWF, int(trials), suiteSeed, workers)
			},
		},
		{
			name:   "campaign/norm",
			trials: 1_000_000,
			run: func(trials int64, workers int) any {
				return reskit.MonteCarloCampaign(normCamp, int(trials), suiteSeed, workers)
			},
		},
		{
			name:   "campaign/gamma",
			trials: 200_000,
			run: func(trials int64, workers int) any {
				return reskit.MonteCarloCampaign(gammaCamp, int(trials), suiteSeed, workers)
			},
		},
	}, nil
}

// scaledTrials applies the -scale factor with a floor of one full
// Monte-Carlo block so tiny CI scales still exercise the block path.
func scaledTrials(base int64, scale float64) int64 {
	t := int64(float64(base) * scale)
	if t < 64 {
		t = 64
	}
	return t
}

// parseWorkers parses the -workers comma list.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		w, err := strconv.Atoi(f)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad worker count %q (want positive integers, e.g. 1,4,8)", f)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -workers list")
	}
	return out, nil
}

// runSuite measures every workload at every worker count and returns
// the populated snapshot. Progress goes to stderr so -out can be "-"
// in the future without interleaving.
func runSuite(wls []workload, workers []int, reps int, scale float64, stderr io.Writer) *benchkit.Snapshot {
	snap := benchkit.NewSnapshot()
	for _, wl := range wls {
		trials := scaledTrials(wl.trials, scale)
		// Warm up outside the timed region: builds the dynamic
		// strategy's coefficient table and fills the scratch pools, so
		// every repetition measures steady state.
		wl.run(min64(trials, 4096), 1)

		rows := make([]benchkit.Result, 0, len(workers))
		aggs := make([]any, 0, len(workers))
		var ns1 float64
		for i, w := range workers {
			var agg any
			tm := benchkit.MinOf(reps, trials, func() {
				agg = wl.run(trials, w)
			})
			row := tm.Result(wl.name, w)
			if i == 0 {
				ns1 = tm.NsPerTrial
			} else if tm.NsPerTrial > 0 {
				row.SpeedupVs1Worker = ns1 / tm.NsPerTrial
			}
			rows = append(rows, row)
			aggs = append(aggs, agg)
			fmt.Fprintf(stderr, "%-28s w=%d  %10.1f ns/trial  %12.0f trials/s  %.3g allocs/trial\n",
				wl.name, w, tm.NsPerTrial, tm.TrialsPerSec, tm.AllocsPerTrial)
		}
		identical := true
		for _, a := range aggs[1:] {
			if a != aggs[0] {
				identical = false
			}
		}
		for i := range rows {
			flag := identical
			rows[i].BitIdenticalAcrossWorkers = &flag
		}
		snap.Results = append(snap.Results, rows...)
	}
	return snap
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "BENCH_suite.json", "snapshot path to write (ignored with -check)")
	check := fs.Bool("check", false, "re-run the suite and fail on drift against -baseline instead of writing")
	baseline := fs.String("baseline", "BENCH_suite.json", "committed snapshot to diff against with -check")
	scale := fs.Float64("scale", 1, "multiply every workload's trial count (CI uses small scales)")
	reps := fs.Int("reps", 5, "repetitions per cell; min-of-N timing")
	workersFlag := fs.String("workers", "1,4,8", "comma-separated worker counts to sweep")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	workers, err := parseWorkers(*workersFlag)
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 2
	}
	wls, err := buildWorkloads()
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}

	snap := runSuite(wls, workers, *reps, *scale, stderr)

	if *check {
		base, err := benchkit.Load(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "bench: loading baseline: %v\n", err)
			return 1
		}
		drifts := benchkit.Compare(base, snap, benchkit.CompareOpts{
			NsDriftPct: benchkit.NsDriftPctFromEnv(),
		})
		if len(drifts) > 0 {
			fmt.Fprintf(stdout, "bench: %d regression(s) against %s:\n", len(drifts), *baseline)
			for _, d := range drifts {
				fmt.Fprintf(stdout, "  %s\n", d)
			}
			return 1
		}
		fmt.Fprintf(stdout, "bench: no drift against %s (%d rows, ns gate %.0f%%)\n",
			*baseline, len(base.Results), benchkit.NsDriftPctFromEnv())
		return 0
	}

	if err := snap.Write(*out); err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "bench: wrote %d results to %s\n", len(snap.Results), *out)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
