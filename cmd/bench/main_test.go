package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"reskit/internal/benchkit"
)

// suiteArgs runs the suite at a tiny scale so the CLI tests finish in
// well under a second while still exercising every workload.
func suiteArgs(extra ...string) []string {
	return append([]string{"-scale", "1e-9", "-reps", "1", "-workers", "1,2"}, extra...)
}

func TestSuiteWritesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.json")
	var out, errb bytes.Buffer
	if code := run(suiteArgs("-out", path), &out, &errb); code != 0 {
		t.Fatalf("suite run exited %d: %s", code, errb.String())
	}
	snap, err := benchkit.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != benchkit.SchemaVersion {
		t.Errorf("schema version = %d, want %d", snap.SchemaVersion, benchkit.SchemaVersion)
	}
	if len(snap.Results) != 10 { // 5 workloads x 2 worker counts
		t.Fatalf("got %d result rows, want 10", len(snap.Results))
	}
	names := map[string]bool{}
	for _, r := range snap.Results {
		names[r.Name] = true
		if r.BitIdenticalAcrossWorkers == nil || !*r.BitIdenticalAcrossWorkers {
			t.Errorf("%s: aggregates not bit-identical across the worker sweep", r.Key())
		}
		if r.Trials < 64 || r.NsPerTrial <= 0 {
			t.Errorf("%s: implausible row %+v", r.Key(), r)
		}
	}
	for _, want := range []string{"preempt", "workflow/dynamic-norm", "workflow/dynamic-gamma", "campaign/norm", "campaign/gamma"} {
		if !names[want] {
			t.Errorf("workload %s missing from snapshot", want)
		}
	}
}

// TestCheckFailsOnDrift is the CLI half of the demonstrated-failure
// requirement: a committed baseline doctored to claim impossibly fast
// timings must make `bench -check` exit non-zero and name the drift.
func TestCheckFailsOnDrift(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	var out, errb bytes.Buffer
	if code := run(suiteArgs("-out", good), &out, &errb); code != 0 {
		t.Fatalf("baseline run exited %d: %s", code, errb.String())
	}

	// An honest re-run against its own snapshot passes: same machine,
	// generous gate (back-to-back tiny runs still jitter).
	t.Setenv("BENCH_DRIFT_PCT", "500")
	out.Reset()
	errb.Reset()
	if code := run(suiteArgs("-check", "-baseline", good), &out, &errb); code != 0 {
		t.Fatalf("self-check exited %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "no drift") {
		t.Errorf("self-check output missing pass message: %s", out.String())
	}

	// Doctor the baseline: claim every row ran in 0.001 ns/trial with
	// zero allocations. Any real machine now regresses past the gate.
	snap, err := benchkit.Load(good)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap.Results {
		snap.Results[i].NsPerTrial = 0.001
		snap.Results[i].AllocsPerTrial = 0
	}
	fast := filepath.Join(dir, "fast.json")
	if err := snap.Write(fast); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	code := run(suiteArgs("-check", "-baseline", fast), &out, &errb)
	if code == 0 {
		t.Fatalf("check against impossible baseline passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ns/trial") {
		t.Errorf("drift report does not name ns/trial: %s", out.String())
	}

	// A missing baseline file is an error, not a silent pass.
	out.Reset()
	errb.Reset()
	if code := run(suiteArgs("-check", "-baseline", filepath.Join(dir, "nope.json")), &out, &errb); code == 0 {
		t.Error("check with missing baseline exited 0")
	}
}

func TestParseWorkers(t *testing.T) {
	if ws, err := parseWorkers("1, 4,8"); err != nil || len(ws) != 3 || ws[2] != 8 {
		t.Errorf("parseWorkers(\"1, 4,8\") = %v, %v", ws, err)
	}
	for _, bad := range []string{"", "0", "-1", "x", "1,,y"} {
		if _, err := parseWorkers(bad); err == nil {
			t.Errorf("parseWorkers(%q) accepted", bad)
		}
	}
}
