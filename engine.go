package reskit

import (
	"context"

	"reskit/internal/engine"
)

// Unified run-engine facade. Every simulate mode, figure render, and
// report build in this repository executes as a list of independent jobs
// under one engine: deterministic per-job rng substreams, worker
// sharding, graceful cancellation, job-granular durable checkpoints
// (RunStateJobs snapshots), atomic artifact writes, and observability
// hooks. Results are bit-identical for any worker count, and an
// interrupted run resumes by re-running only the missing jobs.

// EngineJob is one independent unit of work: a name for logs, the rng
// substream index it owns, and the function that computes its result.
type EngineJob = engine.Job

// EngineJobResult is what a job returns: an opaque payload persisted in
// snapshots, plus artifacts written atomically when the job commits.
type EngineJobResult = engine.JobResult

// EngineArtifact is a file a job produces, written atomically
// (write-temp-fsync-rename) when the job commits.
type EngineArtifact = engine.Artifact

// EngineCheckpoint configures job-granular durable run state: snapshot
// path, throttle interval, and whether to restore completed jobs from an
// existing snapshot.
type EngineCheckpoint = engine.Checkpoint

// EngineSpec describes a full run: the jobs, the base seed and config
// fingerprint, worker count, checkpointing, payload validation, and
// observability sinks.
type EngineSpec = engine.Spec

// EngineResult collects per-job payloads in job order plus how many jobs
// were restored from a snapshot versus freshly run.
type EngineResult = engine.Result

// EngineFailure is the per-job failure policy: retry budget,
// deterministic exponential backoff bounds, per-attempt deadline, and
// keep-going mode (record permanent failures instead of aborting the
// run). The zero value disables all of it at no cost.
type EngineFailure = engine.Failure

// EngineJobError describes one job that exhausted its retry budget in a
// keep-going run; Result.Failed collects them and the run error joins
// them (errors.As-addressable).
type EngineJobError = engine.JobError

// EngineSnapshotError reports that the run's final snapshot could not
// be written or verified: the run state on disk is stale or missing, so
// an "interrupted but resumable" claim would be false.
type EngineSnapshotError = engine.SnapshotError

// ParseEngineFailure parses a compact failure-policy spec such as
// "retries=3,backoff=50ms,max-backoff=5s,timeout=1m,keep-going".
func ParseEngineFailure(spec string) (EngineFailure, error) {
	return engine.ParseFailure(spec)
}

// RunEngine executes spec's jobs across workers. On cancellation it
// drains gracefully, writes a final resumable snapshot when
// checkpointing is configured, and returns ctx.Err() with the partial
// result; on success any snapshot is removed.
func RunEngine(ctx context.Context, spec EngineSpec) (*EngineResult, error) {
	return engine.Run(ctx, spec)
}
