package reskit

import (
	"context"

	"reskit/internal/dist"
	"reskit/internal/fault"
	"reskit/internal/sim"
	"reskit/internal/strategy"
)

// Fault injection, cancellation, and validated construction.
//
// Error handling contract of the facade: constructors taking parameters
// that are normally program constants (Normal, Truncate, NewDynamic,
// strategy constructors, ...) panic on invalid arguments, exactly like
// their internal counterparts. Entry points whose inputs typically come
// from the outside world — fault-plan specs (ParseFaults), trace logs
// (FitTrace, CheckpointLawFromTrace), configuration structs
// (SimConfig.Validate, CampaignConfig.Validate) and the Try* law
// constructors below — return errors instead. Simulation entry points
// (Simulate, MonteCarlo*) panic on invalid configurations; validate
// untrusted configs first.

// FaultPlan bundles the fault models injected into a simulated
// reservation: fail-stop crashes (Crash), checkpoint-commit failures
// (Ckpt), and early reservation revocation (Revoke). Any subset may be
// set; assign the plan to SimConfig.Faults. Fault sampling is
// deterministic per rng substream, so faulty Monte-Carlo runs remain
// bit-identical for any worker count.
type FaultPlan = fault.Plan

// ParseFaults parses the compact fault-spec syntax of the simulate
// command's -faults flag, e.g. "crash=exp:0.02,ckptfail=0.05". The empty
// string and "none" yield a nil plan.
func ParseFaults(spec string) (*FaultPlan, error) { return fault.Parse(spec) }

// CrashExponential returns the memoryless fail-stop crash process with
// the given rate (MTBF = 1/rate), for FaultPlan.Crash.
func CrashExponential(rate float64) (fault.ExpArrival, error) { return fault.NewExpArrival(rate) }

// CrashWeibull returns Weibull(shape, scale) crash inter-arrival times,
// for FaultPlan.Crash. Shape < 1 models infant mortality, shape > 1
// wear-out.
func CrashWeibull(shape, scale float64) (fault.WeibullArrival, error) {
	return fault.NewWeibullArrival(shape, scale)
}

// CkptFailBernoulli returns the checkpoint-commit failure model that
// fails each attempt independently with probability p, for
// FaultPlan.Ckpt.
func CkptFailBernoulli(p float64) (fault.CkptBernoulli, error) { return fault.NewCkptBernoulli(p) }

// CkptFailHazard returns the duration-dependent checkpoint failure
// model: an attempt of duration d fails with probability 1-exp(-rate*d),
// for FaultPlan.Ckpt.
func CkptFailHazard(rate float64) (fault.CkptHazard, error) { return fault.NewCkptHazard(rate) }

// RevokeExponential returns the spot-style revocation model that
// reclaims the reservation at an Exponential(rate) instant, for
// FaultPlan.Revoke.
func RevokeExponential(rate float64) (fault.ExpRevocation, error) {
	return fault.NewExpRevocation(rate)
}

// RevokeUniform returns the revocation model that reclaims the
// reservation with probability p at an instant uniform on (0, R), for
// FaultPlan.Revoke.
func RevokeUniform(p float64) (fault.UniformRevocation, error) {
	return fault.NewUniformRevocation(p)
}

// MonteCarloContext is MonteCarlo with cooperative cancellation: when
// ctx is cancelled, workers stop at the next trial boundary and the call
// returns the well-formed aggregate of every completed trial alongside
// ctx.Err(). Without cancellation the aggregate is bit-identical to
// MonteCarlo and the error is nil.
func MonteCarloContext(ctx context.Context, cfg SimConfig, trials int, seed uint64, workers int) (SimAggregate, error) {
	return sim.MonteCarloContext(ctx, cfg, trials, seed, workers)
}

// MonteCarloCampaignContext is MonteCarloCampaign with cooperative
// cancellation: when ctx is cancelled, workers stop at the next
// reservation boundary and the call returns the well-formed aggregate of
// every fully completed trial alongside ctx.Err(). Without cancellation
// the aggregate is bit-identical to MonteCarloCampaign and the error is
// nil.
func MonteCarloCampaignContext(ctx context.Context, cfg CampaignConfig, trials int, seed uint64, workers int) (CampaignAggregate, error) {
	return sim.MonteCarloCampaignContext(ctx, cfg, trials, seed, workers)
}

// RetryStrategy wraps inner with bounded retry-on-checkpoint-failure:
// after an injected commit failure it immediately attempts again, as
// long as at least budget reservation time remains (pick a high quantile
// of the checkpoint law) and fewer than maxAttempts attempts have failed
// at this boundary (0 = unbounded).
func RetryStrategy(inner Strategy, budget float64, maxAttempts int) Strategy {
	return strategy.NewRetry(inner, budget, maxAttempts)
}

// MarginDynamicStrategy is the paper's dynamic rule computed against a
// checkpoint law inflated by (1 + margin): it checkpoints earlier than
// the fault-free optimum, hedging the extra replay cost that injected
// faults create. Margin 0 reproduces DynamicStrategy.
func MarginDynamicStrategy(r float64, task, ckpt Continuous, margin float64) Strategy {
	return strategy.NewMarginDynamic(r, task, ckpt, margin)
}

// Prebuild forces construction of a Dynamic problem's coefficient table
// under ctx, so a later simulation does not pay the build inside its
// timed or cancellable region. A cancelled build leaves the table
// unbuilt and retryable.
func Prebuild(ctx context.Context, d *Dynamic) error { return d.Prebuild(ctx) }

// TryTruncate is Truncate returning an error instead of panicking, for
// bounds that come from untrusted input.
func TryTruncate(base Continuous, lo, hi float64) (*dist.Truncated, error) {
	return dist.TryTruncate(base, lo, hi)
}

// TryEmpirical is Empirical returning an error instead of panicking, for
// samples read from untrusted logs.
func TryEmpirical(sample []float64) (*dist.Empirical, error) {
	return dist.TryNewEmpirical(sample)
}
