package reskit

import (
	"context"
	"os"
	"time"

	"reskit/internal/atomicio"
	"reskit/internal/ckpt"
	"reskit/internal/sim"
)

// Durable-run facade. The paper's medicine applied to the simulator
// itself: a sharded Monte-Carlo run periodically snapshots its completed
// blocks to disk, and an interrupted run resumes by re-running only the
// missing blocks — with the final aggregate bit-identical to an
// uninterrupted run for any worker count, because every block owns an
// independent rng substream.

// Checkpointer is the durable run-state hook of the sharded Monte-Carlo
// runners: Restore feeds back blocks a previous run completed, Commit
// persists each freshly completed block. RunCheckpointer is the
// production implementation.
type Checkpointer = sim.Checkpointer

// RunState is the durable image of a sharded Monte-Carlo run: geometry,
// seed, config fingerprint, and the encoded partial aggregate of every
// completed block.
type RunState = ckpt.State

// RunCheckpointer persists a RunState to disk, throttled to one
// atomic snapshot per interval, and feeds restored blocks back on
// resume.
type RunCheckpointer = ckpt.Writer

// RunStateKind distinguishes per-reservation and campaign snapshots.
type RunStateKind = ckpt.Kind

// Snapshot kinds, block geometry, and the structured snapshot errors
// (classify with errors.Is; all of them mean "do not trust this file",
// never a panic).
const (
	RunStateMonteCarlo = ckpt.KindMonteCarlo
	RunStateCampaign   = ckpt.KindCampaign
	// RunStateJobs is the generic job-granular snapshot written by the
	// unified run engine (RunEngine); one block per job, block size 1.
	RunStateJobs = ckpt.KindJobs

	// MonteCarloBlockSize and CampaignBlockSize are the trials-per-rng-
	// substream blocks of the two runners; snapshots validate against
	// them on resume.
	MonteCarloBlockSize = sim.MonteCarloBlockSize
	CampaignBlockSize   = sim.CampaignBlockSize
)

// Structured snapshot errors re-exported from internal/ckpt.
var (
	ErrSnapshotCorrupt  = ckpt.ErrCorrupt
	ErrSnapshotVersion  = ckpt.ErrVersion
	ErrSnapshotMismatch = ckpt.ErrMismatch
	ErrNotSnapshot      = ckpt.ErrNotSnapshot
)

// NewRunState returns an empty durable run state for a fresh run.
func NewRunState(kind RunStateKind, fingerprint, seed uint64, trials, blockSize int64) *RunState {
	return ckpt.New(kind, fingerprint, seed, trials, blockSize)
}

// LoadRunState reads, CRC-checks and decodes a snapshot file. Corrupt,
// truncated or version-skewed files return structured errors; validate
// the result against the current run with RunState.Check before
// resuming.
func LoadRunState(path string) (*RunState, error) { return ckpt.Load(path) }

// NewRunCheckpointer returns a checkpointer persisting state to path at
// most once per interval (10s when interval <= 0) via atomic
// write-temp-fsync-rename snapshots.
func NewRunCheckpointer(path string, interval time.Duration, state *RunState) *RunCheckpointer {
	return ckpt.NewWriter(path, interval, state)
}

// ConfigFingerprint hashes an ordered list of configuration facets into
// the fingerprint stored in snapshots, so resuming under a different
// configuration is detected instead of silently producing wrong numbers.
func ConfigFingerprint(parts ...string) uint64 { return ckpt.Fingerprint(parts...) }

// MonteCarloCheckpointed is MonteCarloContext with durable run state:
// blocks already in ck are restored instead of re-run, fresh blocks are
// committed to ck, and the final aggregate is bit-identical to an
// uninterrupted MonteCarlo for any worker count.
func MonteCarloCheckpointed(ctx context.Context, cfg SimConfig, trials int, seed uint64, workers int, ck Checkpointer) (SimAggregate, error) {
	return sim.MonteCarloCheckpointed(ctx, cfg, trials, seed, workers, ck)
}

// MonteCarloCampaignCheckpointed is MonteCarloCampaignContext with
// durable run state, under the same contract as MonteCarloCheckpointed.
func MonteCarloCampaignCheckpointed(ctx context.Context, cfg CampaignConfig, trials int, seed uint64, workers int, ck Checkpointer) (CampaignAggregate, error) {
	return sim.MonteCarloCampaignCheckpointed(ctx, cfg, trials, seed, workers, ck)
}

// WriteFileAtomic replaces the file at path via write-temp-fsync-rename:
// a crash mid-write can never leave a truncated artifact. Every file the
// toolchain emits (benchmark snapshots, metrics, traces, checkpoints)
// goes through this path.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return atomicio.WriteFile(path, data, perm)
}

// CreateFileAtomic starts a streamed atomic write: bytes go to a
// temporary sibling and the destination appears only when Close
// succeeds.
func CreateFileAtomic(path string) (*atomicio.File, error) { return atomicio.Create(path) }
