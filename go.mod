module reskit

go 1.22
