package reskit

import "reskit/internal/core"

// Static is the Section 4.2 problem: fix, before execution, the number
// of IID stochastic tasks to run before the final checkpoint.
type Static = core.Static

// StaticSolution reports the static optimum (continuous relaxation
// maximizer and the integer n_opt).
type StaticSolution = core.StaticSolution

// Dynamic is the Section 4.3 problem: decide after each task whether to
// checkpoint now or run one more task.
type Dynamic = core.Dynamic

// ErrNoIntersection is returned by Dynamic.Intersection when the two
// expected-work curves never cross inside (0, R).
var ErrNoIntersection = core.ErrNoIntersection

// NewStatic builds the static problem for a continuous task law (Normal,
// Gamma, Exponential, Deterministic — anything Summable) and a
// checkpoint law supported on [0, inf).
func NewStatic(r float64, task Summable, ckpt Continuous) *Static {
	return core.NewStatic(r, task, ckpt)
}

// NewStaticDiscrete builds the static problem for a discrete task law
// (Poisson with discretized time, Section 4.2.3).
func NewStaticDiscrete(r float64, task SummableDiscrete, ckpt Continuous) *Static {
	return core.NewStaticDiscrete(r, task, ckpt)
}

// NewDynamic builds the dynamic problem for a continuous task law with
// nonnegative support (e.g. TruncatedNormal, Gamma).
func NewDynamic(r float64, task Continuous, ckpt Continuous) *Dynamic {
	return core.NewDynamic(r, task, ckpt)
}

// NewDynamicDiscrete builds the dynamic problem for a discrete task law
// (Poisson, Section 4.3.3).
func NewDynamicDiscrete(r float64, task Discrete, ckpt Continuous) *Dynamic {
	return core.NewDynamicDiscrete(r, task, ckpt)
}
