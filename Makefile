# Convenience targets for the reskit repository.

GO ?= go

.PHONY: all build vet test race fuzz chaos dist-soak stream-soak bench benchjson benchsuite benchcheck obs-demo advise-demo figures report clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short native-fuzzing pass over the untrusted-input surfaces (trace
# logs, law construction, checkpoint snapshots, and the run engine's
# resume path); run with a longer FUZZTIME to dig deeper (the nightly
# workflow uses 10m per target).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzTraceFit -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzTruncate -fuzztime=$(FUZZTIME) ./internal/dist/
	$(GO) test -run='^$$' -fuzz=FuzzTryEmpirical -fuzztime=$(FUZZTIME) ./internal/dist/
	$(GO) test -run='^$$' -fuzz=FuzzCheckpointDecode -fuzztime=$(FUZZTIME) ./internal/ckpt/
	$(GO) test -run='^$$' -fuzz=FuzzResumeSnapshot -fuzztime=$(FUZZTIME) ./internal/engine/
	$(GO) test -run='^$$' -fuzz=FuzzParseFailure -fuzztime=$(FUZZTIME) ./internal/engine/
	$(GO) test -run='^$$' -fuzz=FuzzParseStop -fuzztime=$(FUZZTIME) ./internal/stats/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeQuery -fuzztime=$(FUZZTIME) ./internal/advisor/

# Chaos soak under the race detector: deterministic fault injection into
# the durability stack (snapshot writes dying ENOSPC/EIO-style, job
# attempts erroring and hanging) plus the engine retry/keep-going/resume
# machinery, asserting every surviving run bit-identical to an
# undisturbed one. COUNT repeats the soak for longer campaigns.
COUNT ?= 1
chaos:
	$(GO) test -race -count=$(COUNT) -run 'Chaos|Injector|JobPlane' ./internal/chaos/
	$(GO) test -race -count=$(COUNT) -run 'Fault|Injected|Writer|Retr|KeepGoing|Timeout|Snapshot' \
		./internal/atomicio/ ./internal/ckpt/ ./internal/engine/

# Distributed-runner soak under the race detector: worker fleets of
# 1/4/8 against one coordinator with >=5% fault rates on every protocol
# path (dropped requests, dropped responses, duplicated submissions,
# hung and erroring jobs), a worker killed mid-run and replaced, and a
# coordinator kill+resume — every fleet's aggregate must be
# bit-identical to an undisturbed local run. -short trims the job
# count for CI; drop it (or raise COUNT) for longer campaigns.
dist-soak:
	$(GO) test -race -short -count=$(COUNT) -run 'TestDist|TestNetPlane' \
		./internal/distrun/ ./internal/chaos/

# Streaming-campaign soak under the race detector: the engine-level
# stream invariants (worker invariance, stop-frontier determinism,
# kill+resume bit-identity) plus the CLI acceptance soak — an -until-ci
# run SIGINTed mid-stream and resumed with 1/4/8 workers must stop at
# the same trial count with bit-identical aggregates.
stream-soak:
	$(GO) test -race -count=$(COUNT) -run 'TestRunStream|TestCampaignStream|TestStream' \
		./internal/engine/ ./internal/sim/ ./cmd/simulate/

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Refresh the benchmark snapshots: BENCH_campaign.json (campaign
# Monte-Carlo through the engine, 10^6 trials, worker sweep 1/4/8,
# min-of-5 timing, checked bit-identical across the sweep) and
# BENCH_faults.json (lost-work/completion trade-off over an MTBF grid
# under injected fail-stop crashes, 10^5 trials).
benchjson:
	$(GO) run ./cmd/simulate -campaign -R 29 -task 'norm:3,0.5@[0,inf]' \
		-ckpt 'norm:5,0.4@[0,inf]' -recovery 1.5 -totalwork 500 \
		-trials 1000000 -benchjson BENCH_campaign.json
	$(GO) run ./cmd/simulate -campaign -R 29 -task 'norm:3,0.5@[0,inf]' \
		-ckpt 'norm:5,0.4@[0,inf]' -recovery 1.5 -totalwork 500 \
		-trials 100000 -faultsweep '20,50,100,200,500,1000' \
		-benchjson BENCH_faults.json

# Refresh BENCH_suite.json: every simulate mode (preempt, workflow,
# campaign) under normal- and gamma-law workloads at production trial
# counts (10^6-10^7), worker sweep 1/4/8, min-of-5 timing, aggregates
# checked bit-identical across the sweep. Takes a few minutes.
benchsuite:
	$(GO) run ./cmd/bench -out BENCH_suite.json

# Perf-regression gate: re-run the suite scaled down and fail on drift
# against the committed BENCH_suite.json. The ns/trial gate is host-
# dependent, so CI loosens it via BENCH_DRIFT_PCT; the allocs/trial and
# bit-identity gates are machine-independent and always tight.
BENCHCHECK_SCALE ?= 0.02
benchcheck:
	$(GO) run ./cmd/bench -check -scale $(BENCHCHECK_SCALE)

# Observability demo: a fault-injected campaign with live progress, a
# JSONL event trace (1 trial in 200), a metrics snapshot, and a live
# expvar/pprof endpoint on 127.0.0.1:6060 while it runs.
obs-demo:
	mkdir -p out
	$(GO) run ./cmd/simulate -campaign -R 29 -task 'norm:3,0.5@[0,inf]' \
		-ckpt 'norm:5,0.4@[0,inf]' -recovery 1.5 -totalwork 500 \
		-trials 2000 -mtbf 100 -progress -listen 127.0.0.1:6060 \
		-trace out/trace.jsonl -tracesample 200 -metrics out/metrics.json
	@echo "metrics -> out/metrics.json, trace -> out/trace.jsonl"

# Advisor smoke test: serve the policy API on an ephemeral port, answer
# a batch over HTTP, and require every answer identical to the one-shot
# CLI path (plus live /metrics and persisted artifacts). Needs curl+jq.
advise-demo:
	GO="$(GO)" bash scripts/advise_demo.sh

figures:
	$(GO) run ./cmd/figures -out out/figures -extended

report:
	$(GO) run ./cmd/report -extended -out REPORT.md

clean:
	rm -rf out REPORT.md test_output.txt bench_output.txt
