# Convenience targets for the reskit repository.

GO ?= go

.PHONY: all build vet test race bench benchjson figures report clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/ ./internal/planner/ ./internal/quad/ ./internal/core/ ./internal/dist/

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Refresh the BENCH_campaign.json throughput snapshot: campaign
# Monte-Carlo with one worker vs all CPUs, checked bit-identical.
benchjson:
	$(GO) run ./cmd/simulate -campaign -R 29 -task 'norm:3,0.5@[0,inf]' \
		-ckpt 'norm:5,0.4@[0,inf]' -recovery 1.5 -totalwork 500 \
		-trials 400 -benchjson BENCH_campaign.json

figures:
	$(GO) run ./cmd/figures -out out/figures -extended

report:
	$(GO) run ./cmd/report -extended -out REPORT.md

clean:
	rm -rf out REPORT.md test_output.txt bench_output.txt
