# Convenience targets for the reskit repository.

GO ?= go

.PHONY: all build vet test race bench figures report clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/ ./internal/planner/ ./internal/quad/

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

figures:
	$(GO) run ./cmd/figures -out out/figures -extended

report:
	$(GO) run ./cmd/report -extended -out REPORT.md

clean:
	rm -rf out REPORT.md test_output.txt bench_output.txt
