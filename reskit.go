// Package reskit is a Go implementation of the checkpoint-placement
// strategies of Barbut, Benoit, Herault, Robert and Vivien, "When to
// checkpoint at the end of a fixed-length reservation?" (FTXS'23, held
// with SC 2023) — deciding when an application running inside a
// fixed-length reservation should take its final checkpoint so that the
// expected amount of saved work is maximized, when the checkpoint
// duration (and, for task chains, the task durations) are stochastic.
//
// The package is a facade over the internal implementation and is the
// only import a downstream user needs:
//
//   - Preemptible (Section 3 of the paper): the application can
//     checkpoint at any instant; build one with NewPreemptible and a
//     checkpoint-duration law of bounded support, then call OptimalX.
//
//   - Static and Dynamic (Section 4): the application is a chain of IID
//     stochastic tasks and can checkpoint only between tasks. Static
//     picks the optimal task count ahead of time; Dynamic decides after
//     each task, and exposes the indifference point Intersection.
//
//   - Distributions: Uniform, Exponential, Normal, LogNormal, Gamma,
//     Weibull, Poisson, Deterministic, generic truncation (Truncate),
//     and Empirical laws learned from data.
//
//   - Simulation: reservation and campaign simulators with a parallel
//     Monte-Carlo harness, the strategy implementations the paper
//     compares (static, dynamic, pessimistic, oracle), and goodness
//     statistics.
//
//   - Trace fitting: learn D_C (or the task law) from logs of past
//     durations, with AIC model selection across the paper's families.
//
// Quickstart:
//
//	law := reskit.Truncate(reskit.Normal(5, 0.4), 3, 7) // C in [3, 7]
//	prob := reskit.NewPreemptible(60, law)              // R = 60 s
//	sol := prob.OptimalX()
//	fmt.Printf("checkpoint %.2f s before the end\n", sol.X)
package reskit

import (
	"math"

	"reskit/internal/dist"
	"reskit/internal/rng"
)

// Continuous is a continuous probability law (density, CDF, quantile,
// moments, sampling). All laws constructed by this package implement it.
type Continuous = dist.Continuous

// Discrete is an integer-valued probability law.
type Discrete = dist.Discrete

// Summable is a continuous law closed under IID summation — the property
// the static strategy needs (Normal, Gamma, Exponential, Deterministic).
type Summable = dist.Summable

// SummableDiscrete is the discrete analogue (Poisson).
type SummableDiscrete = dist.SummableDiscrete

// RNG is a deterministic random generator for sampling and simulation.
type RNG = rng.Source

// NewRNG returns a generator seeded with seed; identical seeds give
// identical streams.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewRNGStream returns the stream-th independent substream of seed, for
// handing one generator to each parallel worker.
func NewRNGStream(seed, stream uint64) *RNG { return rng.NewStream(seed, stream) }

// Uniform returns the uniform law on [a, b] — the Section 3.2.1
// checkpoint-duration model, which needs no truncation.
func Uniform(a, b float64) dist.Uniform { return dist.NewUniform(a, b) }

// Exponential returns the Exponential law with the given rate
// (mean 1/rate); truncate it to [a, b] for the Section 3.2.2 model.
func Exponential(rate float64) dist.Exponential { return dist.NewExponential(rate) }

// Normal returns the Gaussian law N(mu, sigma^2).
func Normal(mu, sigma float64) dist.Normal { return dist.NewNormal(mu, sigma) }

// LogNormal returns the law of exp(N(mu, sigma^2)).
func LogNormal(mu, sigma float64) dist.LogNormal { return dist.NewLogNormal(mu, sigma) }

// LogNormalFromMoments returns the LogNormal law with the given mean and
// standard deviation (the mu* and sigma* parameterization of Section
// 3.2.4).
func LogNormalFromMoments(mean, stddev float64) dist.LogNormal {
	return dist.NewLogNormalFromMoments(mean, stddev)
}

// Gamma returns the Gamma law with shape k and scale theta.
func Gamma(k, theta float64) dist.Gamma { return dist.NewGamma(k, theta) }

// Weibull returns the Weibull law with shape k and scale lambda.
func Weibull(k, lambda float64) dist.Weibull { return dist.NewWeibull(k, lambda) }

// Poisson returns the Poisson law with mean lambda (discrete task
// durations, Sections 4.2.3 and 4.3.3).
func Poisson(lambda float64) dist.Poisson { return dist.NewPoisson(lambda) }

// Deterministic returns the point mass at v.
func Deterministic(v float64) dist.Deterministic { return dist.NewDeterministic(v) }

// Truncate conditions a law on [lo, hi] — the construction defining the
// paper's checkpoint-duration law D_C (Section 3.1). Use
// math.Inf(1) as hi for half-line truncations such as the Section 4
// checkpoint law TruncatedNormal.
func Truncate(base Continuous, lo, hi float64) *dist.Truncated {
	return dist.Truncate(base, lo, hi)
}

// TruncatedNormal returns N(mu, sigma^2) truncated to [0, inf) — the
// canonical checkpoint-duration law of the workflow scenario
// (Section 4.1).
func TruncatedNormal(mu, sigma float64) *dist.Truncated {
	return dist.Truncate(dist.NewNormal(mu, sigma), 0, math.Inf(1))
}

// Empirical returns the model-free law of an observed sample.
func Empirical(sample []float64) *dist.Empirical { return dist.NewEmpirical(sample) }
