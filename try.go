package reskit

import (
	"reskit/internal/core"
	"reskit/internal/strategy"
)

// Error-returning twins of the problem and policy constructors. The
// classic New* constructors panic on invalid arguments — appropriate
// when the arguments are literals in a program — while the TryNew*
// variants return the same validation failures as errors, for callers
// assembling problems from flags, config files, or other untrusted
// input.

// TryNewPreemptible is NewPreemptible returning an error instead of
// panicking on an invalid setup.
func TryNewPreemptible(r float64, c Continuous) (*Preemptible, error) {
	return core.TryNewPreemptible(r, c)
}

// TryNewStatic is NewStatic returning an error instead of panicking.
func TryNewStatic(r float64, task Summable, ckpt Continuous) (*Static, error) {
	return core.TryNewStatic(r, task, ckpt)
}

// TryNewStaticDiscrete is NewStaticDiscrete returning an error instead
// of panicking.
func TryNewStaticDiscrete(r float64, task SummableDiscrete, ckpt Continuous) (*Static, error) {
	return core.TryNewStaticDiscrete(r, task, ckpt)
}

// TryNewDynamic is NewDynamic returning an error instead of panicking.
func TryNewDynamic(r float64, task Continuous, ckpt Continuous) (*Dynamic, error) {
	return core.TryNewDynamic(r, task, ckpt)
}

// TryNewDynamicDiscrete is NewDynamicDiscrete returning an error instead
// of panicking.
func TryNewDynamicDiscrete(r float64, task Discrete, ckpt Continuous) (*Dynamic, error) {
	return core.TryNewDynamicDiscrete(r, task, ckpt)
}

// TryNewDP is NewDP returning an error instead of panicking.
func TryNewDP(r float64, task, ckpt Continuous, steps int) (*DP, error) {
	return core.TryNewDP(r, task, ckpt, steps)
}

// TryNewMultiDP is NewMultiDP returning an error instead of panicking.
func TryNewMultiDP(r float64, task, ckpt Continuous, steps int) (*MultiDP, error) {
	return core.TryNewMultiDP(r, task, ckpt, steps)
}

// TryNewHeterogeneous is NewHeterogeneous returning an error instead of
// panicking.
func TryNewHeterogeneous(r float64, tasks []TaskSpec) (*Heterogeneous, error) {
	return core.TryNewHeterogeneous(r, tasks)
}

// TryStaticStrategy is StaticStrategy returning an error instead of
// panicking.
func TryStaticStrategy(n int) (Strategy, error) {
	return strategy.TryNewStatic(n)
}

// TryPessimisticStrategy is PessimisticStrategy returning an error
// instead of panicking.
func TryPessimisticStrategy(xMax, cMax float64) (Strategy, error) {
	return strategy.TryNewPessimistic(xMax, cMax)
}

// TryThresholdStrategy is ThresholdStrategy returning an error instead
// of panicking.
func TryThresholdStrategy(w float64) (Strategy, error) {
	return strategy.TryNewWorkThreshold(w)
}

// TryPeriodicStrategy is PeriodicStrategy returning an error instead of
// panicking.
func TryPeriodicStrategy(p float64) (Strategy, error) {
	return strategy.TryNewPeriodic(p)
}

// TryYoungDalyStrategy is YoungDalyStrategy returning an error instead
// of panicking.
func TryYoungDalyStrategy(mtbf, meanCkpt float64) (Strategy, error) {
	return strategy.TryNewYoungDaly(mtbf, meanCkpt)
}
