// Benchmark harness: one benchmark per figure of Barbut et al.
// (FTXS'23), plus the simulation-validation experiments V1-V6 that the
// paper's conclusion calls for. Each benchmark regenerates its
// figure/experiment per iteration and reports the headline values as
// custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reprints the quantities the paper reports (X_opt, y_opt, n_opt, W_int,
// expected work) next to the timing of the solver that produced them.
// The correctness of every number against the paper's reference values
// is enforced separately by the test-suite (internal/figures).
package reskit_test

import (
	"math"
	"testing"

	"reskit"
	"reskit/internal/figures"
)

// benchFigure regenerates a figure b.N times and reports its measured
// values as metrics.
func benchFigure(b *testing.B, gen func() figures.Figure, metrics ...string) {
	var fig figures.Figure
	for i := 0; i < b.N; i++ {
		fig = gen()
	}
	for _, m := range metrics {
		if v, ok := fig.Measured[m]; ok {
			b.ReportMetric(v, m)
		}
	}
	if bad := fig.Check(); len(bad) > 0 {
		b.Fatalf("%s does not reproduce: %v", fig.ID, bad)
	}
}

// --- Section 3: checkpoint at any instant (Figures 1-4) ---

func BenchmarkFig01aUniform(b *testing.B) {
	benchFigure(b, figures.Fig1a, "X_opt", "E(W(X_opt))", "gain_vs_pess")
}

func BenchmarkFig01bUniform(b *testing.B) {
	benchFigure(b, figures.Fig1b, "X_opt", "E(W(X_opt))")
}

func BenchmarkFig02aExponential(b *testing.B) {
	benchFigure(b, figures.Fig2a, "X_opt", "E(W(X_opt))", "gain_vs_pess")
}

func BenchmarkFig02bExponential(b *testing.B) {
	benchFigure(b, figures.Fig2b, "X_opt", "E(W(X_opt))")
}

func BenchmarkFig03aNormal(b *testing.B) {
	benchFigure(b, figures.Fig3a, "X_opt", "E(W(X_opt))", "gain_vs_pess")
}

func BenchmarkFig03bNormal(b *testing.B) {
	benchFigure(b, figures.Fig3b, "X_opt", "E(W(X_opt))")
}

func BenchmarkFig04aLogNormal(b *testing.B) {
	benchFigure(b, figures.Fig4a, "X_opt", "E(W(X_opt))", "gain_vs_pess")
}

func BenchmarkFig04bLogNormal(b *testing.B) {
	benchFigure(b, figures.Fig4b, "X_opt", "E(W(X_opt))")
}

// --- Section 4.2: static strategy (Figures 5-7) ---

func BenchmarkFig05StaticNormal(b *testing.B) {
	benchFigure(b, figures.Fig5, "y_opt", "n_opt", "E(n_opt)")
}

func BenchmarkFig06StaticGamma(b *testing.B) {
	benchFigure(b, figures.Fig6, "y_opt", "n_opt", "E(n_opt)")
}

func BenchmarkFig07StaticPoisson(b *testing.B) {
	benchFigure(b, figures.Fig7, "y_opt", "n_opt", "E(n_opt)")
}

// --- Section 4.3: dynamic strategy (Figures 8-10) ---

func BenchmarkFig08DynamicNormal(b *testing.B) {
	benchFigure(b, figures.Fig8, "W_int")
}

func BenchmarkFig09DynamicGamma(b *testing.B) {
	benchFigure(b, figures.Fig9, "W_int")
}

func BenchmarkFig10DynamicPoisson(b *testing.B) {
	benchFigure(b, figures.Fig10, "W_int")
}

// --- V1: Monte-Carlo validation of the preemptible formulas ---

func BenchmarkValidatePreemptible(b *testing.B) {
	p := reskit.NewPreemptible(10, reskit.Truncate(reskit.Exponential(0.5), 1, 5))
	sol := p.OptimalX()
	var agg reskit.PreemptibleAggregate
	for i := 0; i < b.N; i++ {
		agg = reskit.MonteCarloPreemptible(p, sol.X, 50000, 1, 0)
	}
	b.ReportMetric(sol.ExpectedWork, "analytic")
	b.ReportMetric(agg.Work.Mean(), "simulated")
	if math.Abs(agg.Work.Mean()-sol.ExpectedWork) > 5*agg.Work.StdErr() {
		b.Fatalf("simulation %g does not validate analytic %g", agg.Work.Mean(), sol.ExpectedWork)
	}
}

// --- V2: Monte-Carlo validation of the workflow formulas ---

func BenchmarkValidateWorkflow(b *testing.B) {
	ckpt := reskit.TruncatedNormal(5, 0.4)
	static := reskit.NewStatic(30, reskit.Normal(3, 0.5), ckpt)
	want := static.ExpectedWork(7)
	cfg := reskit.SimConfig{
		R: 30, Task: reskit.TruncatedNormal(3, 0.5), Ckpt: ckpt,
		Strategy: reskit.StaticStrategy(7),
	}
	var agg reskit.SimAggregate
	for i := 0; i < b.N; i++ {
		agg = reskit.MonteCarlo(cfg, 50000, 1, 0)
	}
	b.ReportMetric(want, "analytic")
	b.ReportMetric(agg.Saved.Mean(), "simulated")
	if math.Abs(agg.Saved.Mean()-want) > 5*agg.Saved.StdErr()+0.05 {
		b.Fatalf("simulation %g does not validate analytic %g", agg.Saved.Mean(), want)
	}
}

// --- V3: strategy comparison on the Figure 8 instance ---

func BenchmarkStrategySweep(b *testing.B) {
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(5, 0.4)
	dyn := reskit.NewDynamic(29, task, ckpt)
	nOpt := reskit.NewStatic(29, reskit.Normal(3, 0.5), ckpt).Optimize().NOpt
	base := reskit.SimConfig{R: 29, Task: task, Ckpt: ckpt}
	mk := func(s reskit.Strategy) reskit.SimConfig { c := base; c.Strategy = s; return c }

	const trials = 20000
	var oracle, dynM, statM, pessM float64
	for i := 0; i < b.N; i++ {
		oracle = reskit.MonteCarloOracle(mk(reskit.NeverStrategy()), trials, 3, 0).Saved.Mean()
		dynM = reskit.MonteCarlo(mk(reskit.DynamicStrategy(dyn)), trials, 3, 0).Saved.Mean()
		statM = reskit.MonteCarlo(mk(reskit.StaticStrategy(nOpt)), trials, 3, 0).Saved.Mean()
		pessM = reskit.MonteCarlo(mk(reskit.PessimisticStrategy(
			task.Quantile(0.9999), ckpt.Quantile(0.9999))), trials, 3, 0).Saved.Mean()
	}
	b.ReportMetric(oracle, "oracle")
	b.ReportMetric(dynM, "dynamic")
	b.ReportMetric(statM, "static")
	b.ReportMetric(pessM, "pessim")
	if !(oracle+0.1 >= dynM && dynM+0.1 >= statM && statM+0.1 >= pessM) {
		b.Fatalf("ordering violated: oracle %g dyn %g stat %g pess %g", oracle, dynM, statM, pessM)
	}
}

// --- V4: gain of optimal over pessimistic vs checkpoint variability ---

func BenchmarkGainAblation(b *testing.B) {
	// Widen the support [a, b] of a Uniform checkpoint law around mean 4
	// and record the optimal-vs-pessimistic gain: the more variable the
	// checkpoint time, the more the paper's strategy wins.
	spreads := []float64{0.5, 1, 2, 3}
	gains := make([]float64, len(spreads))
	for i := 0; i < b.N; i++ {
		for j, s := range spreads {
			p := reskit.NewPreemptible(10, reskit.Uniform(4-s, 4+s))
			gains[j] = p.Gain()
		}
	}
	for j, s := range spreads {
		b.ReportMetric(gains[j], "gain@±"+formatSpread(s))
	}
	for j := 1; j < len(gains); j++ {
		if gains[j] < gains[j-1]-1e-9 {
			b.Fatalf("gain not monotone in variability: %v", gains)
		}
	}
}

func formatSpread(s float64) string {
	switch s {
	case 0.5:
		return "0.5"
	case 1:
		return "1"
	case 2:
		return "2"
	default:
		return "3"
	}
}

// --- V5: Section 4.4 after-checkpoint policies ---

func BenchmarkAfterCheckpoint(b *testing.B) {
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(2, 0.3)
	dyn := reskit.NewDynamic(60, task, ckpt)
	base := reskit.SimConfig{R: 60, Task: task, Ckpt: ckpt, Strategy: reskit.DynamicStrategy(dyn)}

	const trials = 10000
	var dropSaved, contSaved, dropUsed, contUsed float64
	for i := 0; i < b.N; i++ {
		drop := base
		drop.After = reskit.DropReservation
		cont := base
		cont.After = reskit.ContinueExecution
		aggDrop := reskit.MonteCarlo(drop, trials, 4, 0)
		aggCont := reskit.MonteCarlo(cont, trials, 4, 0)
		dropSaved, dropUsed = aggDrop.Saved.Mean(), aggDrop.TimeUsed.Mean()
		contSaved, contUsed = aggCont.Saved.Mean(), aggCont.TimeUsed.Mean()
	}
	b.ReportMetric(dropSaved, "drop_saved")
	b.ReportMetric(contSaved, "cont_saved")
	b.ReportMetric(dropSaved/dropUsed, "drop_eff")
	b.ReportMetric(contSaved/contUsed, "cont_eff")
	if contSaved < dropSaved {
		b.Fatalf("continuing saved less (%g) than dropping (%g)", contSaved, dropSaved)
	}
}

// --- V6: multi-reservation campaign with recovery ---

func BenchmarkCampaign(b *testing.B) {
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(5, 0.4)
	dyn := reskit.NewDynamic(29, task, ckpt)
	cfg := reskit.CampaignConfig{
		Reservation: reskit.SimConfig{
			R: 29, Recovery: 1.5, Task: task, Ckpt: ckpt,
			Strategy: reskit.DynamicStrategy(dyn),
		},
		TotalWork: 500,
	}
	const trials = 200
	reskit.MonteCarloCampaign(cfg, 1, 1, 1) // build the coefficient table outside the timing
	b.ResetTimer()
	var agg reskit.CampaignAggregate
	for i := 0; i < b.N; i++ {
		agg = reskit.MonteCarloCampaign(cfg, trials, 1, 0)
	}
	b.ReportMetric(agg.Reservations, "reservations")
	b.ReportMetric(agg.Utilization, "utilization")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*trials), "ns/trial")
	if !agg.CompletedAll {
		b.Fatalf("campaign incomplete")
	}
}

// BenchmarkCampaignSerial is the one-worker reference for
// BenchmarkCampaign: the ns/trial ratio between the two is the
// parallel speedup recorded in BENCH_campaign.json (make benchjson).
func BenchmarkCampaignSerial(b *testing.B) {
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(5, 0.4)
	dyn := reskit.NewDynamic(29, task, ckpt)
	cfg := reskit.CampaignConfig{
		Reservation: reskit.SimConfig{
			R: 29, Recovery: 1.5, Task: task, Ckpt: ckpt,
			Strategy: reskit.DynamicStrategy(dyn),
		},
		TotalWork: 500,
	}
	const trials = 200
	reskit.MonteCarloCampaign(cfg, 1, 1, 1)
	b.ResetTimer()
	var agg reskit.CampaignAggregate
	for i := 0; i < b.N; i++ {
		agg = reskit.MonteCarloCampaign(cfg, trials, 1, 1)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*trials), "ns/trial")
	if !agg.CompletedAll {
		b.Fatalf("campaign incomplete")
	}
}

// --- V7: optimality gap of the myopic dynamic rule vs full DP ---

func BenchmarkDPvsMyopic(b *testing.B) {
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(5, 0.4)
	var dpVal, myopicVal float64
	for i := 0; i < b.N; i++ {
		dpVal = reskit.NewDP(29, task, ckpt, 2048).Solve().Value
		dyn := reskit.NewDynamic(29, task, ckpt)
		cfg := reskit.SimConfig{R: 29, Task: task, Ckpt: ckpt, Strategy: reskit.DynamicStrategy(dyn)}
		myopicVal = reskit.MonteCarlo(cfg, 30000, 6, 0).Saved.Mean()
	}
	b.ReportMetric(dpVal, "dp_optimal")
	b.ReportMetric(myopicVal, "myopic_sim")
	// The myopic rule must be near-optimal here (within MC noise + DP
	// discretization, a couple percent).
	if myopicVal < 0.95*dpVal {
		b.Fatalf("myopic %g far below DP optimum %g", myopicVal, dpVal)
	}
	if myopicVal > dpVal+0.35 {
		b.Fatalf("simulated myopic %g exceeds DP optimum %g beyond noise", myopicVal, dpVal)
	}
}

// --- V8: heavy-tailed checkpoint law (truncated Pareto) ---

func BenchmarkHeavyTailCheckpoint(b *testing.B) {
	// Same support [1, 8] and R for three shapes of D_C. The gain of the
	// optimal instant over the pessimistic X=b plan is driven by how much
	// probability mass sits far below b: a law concentrated near a
	// (Normal at 2, or the truncated Pareto whose density collapses like
	// x^-2.2) gains a lot; a law whose mass hugs b (Normal at 7) gains
	// almost nothing — planning for the worst case is then nearly right.
	lowMass := reskit.Truncate(reskit.Normal(2, 0.5), 1, 8)
	heavy := reskit.Truncate(reskit.Pareto(1, 1.2), 1, 8)
	highMass := reskit.Truncate(reskit.Normal(7, 0.5), 1, 8)
	var gainLow, gainHeavy, gainHigh float64
	for i := 0; i < b.N; i++ {
		gainLow = reskit.NewPreemptible(12, lowMass).Gain()
		gainHeavy = reskit.NewPreemptible(12, heavy).Gain()
		gainHigh = reskit.NewPreemptible(12, highMass).Gain()
	}
	b.ReportMetric(gainLow, "gain_mass@2")
	b.ReportMetric(gainHeavy, "gain_pareto")
	b.ReportMetric(gainHigh, "gain_mass@7")
	if !(gainLow > gainHeavy && gainHeavy > gainHigh) {
		b.Fatalf("gain should decrease as mass moves toward b: %g, %g, %g",
			gainLow, gainHeavy, gainHigh)
	}
	if gainHeavy < 1.3 {
		b.Fatalf("heavy-tail gain %g implausibly small", gainHeavy)
	}
}

// --- V9: generalized dynamic rule on a heterogeneous pipeline ---

func BenchmarkHeterogeneousPipeline(b *testing.B) {
	specs := []reskit.TaskSpec{
		{Duration: reskit.TruncatedNormal(3, 0.4), Ckpt: reskit.TruncatedNormal(2, 0.3)},
		{Duration: reskit.TruncatedNormal(5, 0.8), Ckpt: reskit.TruncatedNormal(2.5, 0.3)},
		{Duration: reskit.Gamma(9, 1.0), Ckpt: reskit.TruncatedNormal(6, 0.8)},
		{Duration: reskit.TruncatedNormal(4, 0.6), Ckpt: reskit.TruncatedNormal(3, 0.4)},
		{Duration: reskit.TruncatedNormal(6, 0.9), Ckpt: reskit.TruncatedNormal(1, 0.2)},
	}
	var n int
	var v float64
	for i := 0; i < b.N; i++ {
		h := reskit.NewHeterogeneous(30, specs)
		n, v = reskit.StaticHeteroHeuristic(h)
	}
	b.ReportMetric(float64(n), "n_heuristic")
	b.ReportMetric(v, "E_heuristic")
}

// --- V10: queue-aware makespan vs reservation length ---

func BenchmarkQueueAwareMakespan(b *testing.B) {
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(5, 0.4)
	base := reskit.SimConfig{Task: task, Ckpt: ckpt, Recovery: 1.5}
	mk := func(r float64) reskit.Strategy {
		return reskit.DynamicStrategy(reskit.NewDynamic(r, task, ckpt))
	}
	candidates := []float64{20, 80}
	var steep, flat map[float64]float64
	for i := 0; i < b.N; i++ {
		steep = reskit.CompareReservationLengths(base, 300,
			reskit.PowerLawWait(0.02, 2.0, 0.3), candidates, mk, 20, 1)
		flat = reskit.CompareReservationLengths(base, 300,
			reskit.ConstantWait(reskit.Deterministic(15)), candidates, mk, 20, 1)
	}
	b.ReportMetric(steep[20], "steep_R20")
	b.ReportMetric(steep[80], "steep_R80")
	b.ReportMetric(flat[20], "flat_R20")
	b.ReportMetric(flat[80], "flat_R80")
	if !(steep[20] < steep[80] && flat[80] < flat[20]) {
		b.Fatalf("wait-model regimes wrong: steep %v flat %v", steep, flat)
	}
}

// --- V11: fail-stop errors inside reservations (Section 5 future work) ---

func BenchmarkFailureRegimes(b *testing.B) {
	// With failures, Young/Daly periodic checkpointing inside the
	// reservation beats the paper's end-only dynamic rule; without
	// failures the ordering flips. Both directions, one benchmark.
	task := reskit.TruncatedNormal(3, 0.5)
	ckpt := reskit.TruncatedNormal(2, 0.3)
	const mtbf = 25.0
	dyn := reskit.NewDynamic(100, task, ckpt)
	mk := func(s reskit.Strategy, failRate float64) reskit.SimConfig {
		return reskit.SimConfig{
			R: 100, Task: task, Ckpt: ckpt, Strategy: s,
			After: reskit.ContinueExecution, Recovery: 0.5, FailureRate: failRate,
		}
	}
	const trials = 6000
	var failYD, failDyn, okYD, okDyn float64
	for i := 0; i < b.N; i++ {
		yd := reskit.YoungDalyStrategy(mtbf, ckpt.Mean())
		failYD = reskit.MonteCarlo(mk(yd, 1/mtbf), trials, 14, 0).Saved.Mean()
		failDyn = reskit.MonteCarlo(mk(reskit.DynamicStrategy(dyn), 1/mtbf), trials, 14, 0).Saved.Mean()
		okYD = reskit.MonteCarlo(mk(yd, 0), trials, 14, 0).Saved.Mean()
		okDyn = reskit.MonteCarlo(mk(reskit.DynamicStrategy(dyn), 0), trials, 14, 0).Saved.Mean()
	}
	b.ReportMetric(failYD, "fail_youngdaly")
	b.ReportMetric(failDyn, "fail_dynamic")
	b.ReportMetric(okYD, "ok_youngdaly")
	b.ReportMetric(okDyn, "ok_dynamic")
	if !(failYD > failDyn && okDyn > okYD) {
		b.Fatalf("failure-regime ordering wrong: %g/%g and %g/%g", failYD, failDyn, okYD, okDyn)
	}
}

// --- V12: value of repeated in-reservation commits (§4.4, exact) ---

func BenchmarkMultiCheckpointValue(b *testing.B) {
	// Heavy-tailed tasks + cheap checkpoints: committing in batches
	// insures against one task overshooting the commit window. Report
	// the single- vs multi-checkpoint optima for both task shapes.
	cheap := reskit.TruncatedNormal(1, 0.15)
	lowVar := reskit.TruncatedNormal(3, 0.5)
	heavy := reskit.Gamma(1, 3)
	var sLow, mLow, sHeavy, mHeavy float64
	for i := 0; i < b.N; i++ {
		sLow = reskit.NewDP(60, lowVar, cheap, 2048).Solve().Value
		mLow = reskit.NewMultiDP(60, lowVar, cheap, 512).Solve().Value
		sHeavy = reskit.NewDP(60, heavy, cheap, 2048).Solve().Value
		mHeavy = reskit.NewMultiDP(60, heavy, cheap, 512).Solve().Value
	}
	b.ReportMetric(sLow, "single_lowvar")
	b.ReportMetric(mLow, "multi_lowvar")
	b.ReportMetric(sHeavy, "single_heavy")
	b.ReportMetric(mHeavy, "multi_heavy")
	if mHeavy <= sHeavy+2 {
		b.Fatalf("multi-checkpoint advantage missing: %g vs %g", mHeavy, sHeavy)
	}
}
